//! Index-accelerated subgraph coverage (§6.1).
//!
//! > "if a pattern `p` is contained in a graph `G`, then the corresponding
//! > column entries for `p` in TP-matrix must be smaller than or equal to
//! > that of `G` in TG-matrix."
//!
//! Given a pattern, we compute its feature-count profile (over FCTs,
//! frequent edges, and infrequent edges), intersect the graphs whose counts
//! dominate it, and only run VF2 on the survivors — exactly the
//! `(p₃, G₈), (p₃, G₉)` pruning of the paper's example.

use crate::fct_index::FctIndex;
use crate::ife_index::IfeIndex;
use crate::EMBED_CAP;
use midas_graph::isomorphism::{count_embeddings, is_subgraph_of};
use midas_graph::{EdgeLabel, GraphDb, GraphId, LabeledGraph, MatchKernel};
use std::collections::BTreeSet;

/// A pattern's feature-count profile against the current indices.
#[derive(Debug, Clone, Default)]
pub struct PatternProfile {
    /// Counts over FCT-Index features (only non-zero entries).
    pub fct_counts: Vec<(crate::FeatureId, u32)>,
    /// Counts over tracked infrequent edges (only non-zero entries).
    pub ife_counts: Vec<(EdgeLabel, u32)>,
}

/// Computes the profile of an arbitrary (candidate) pattern by counting
/// feature embeddings directly — features are tiny, so this is cheap.
pub fn profile_pattern(fct: &FctIndex, ife: &IfeIndex, pattern: &LabeledGraph) -> PatternProfile {
    let fct_counts = fct
        .features()
        .filter_map(|(id, feature)| {
            let c = count_embeddings(&feature.tree, pattern, EMBED_CAP) as u32;
            (c > 0).then_some((id, c))
        })
        .collect();
    let ife_counts = ife
        .tracked()
        .iter()
        .filter_map(|&label| {
            let c = pattern.edge_labels().filter(|&l| l == label).count() as u32;
            (c > 0).then_some((label, c))
        })
        .collect();
    PatternProfile {
        fct_counts,
        ife_counts,
    }
}

/// Returns the ids of graphs whose index columns dominate `profile` —
/// the candidate set that still needs isomorphism verification.
///
/// `universe` bounds the candidates (e.g. a sampled database `D_s`); pass
/// `None` to consider every graph appearing in the matrices. When the
/// profile is empty the filter is vacuous and the whole universe returns.
pub fn candidate_graphs(
    fct: &FctIndex,
    ife: &IfeIndex,
    profile: &PatternProfile,
    universe: &BTreeSet<GraphId>,
) -> BTreeSet<GraphId> {
    fn intersect(candidates: &mut Option<BTreeSet<GraphId>>, survivors: BTreeSet<GraphId>) {
        *candidates = Some(match candidates.take() {
            None => survivors,
            Some(old) => old.intersection(&survivors).copied().collect(),
        });
    }
    let mut candidates: Option<BTreeSet<GraphId>> = None;
    for &(fid, need) in &profile.fct_counts {
        let survivors: BTreeSet<GraphId> = fct
            .tg()
            .row(fid)
            .filter(|&(id, c)| c >= need && universe.contains(&id))
            .map(|(id, _)| id)
            .collect();
        intersect(&mut candidates, survivors);
        if candidates.as_ref().is_some_and(|c| c.is_empty()) {
            return BTreeSet::new();
        }
    }
    for &(label, need) in &profile.ife_counts {
        let survivors: BTreeSet<GraphId> = ife
            .eg()
            .row(label)
            .filter(|&(id, c)| c >= need && universe.contains(&id))
            .map(|(id, _)| id)
            .collect();
        intersect(&mut candidates, survivors);
        if candidates.as_ref().is_some_and(|c| c.is_empty()) {
            return BTreeSet::new();
        }
    }
    candidates.unwrap_or_else(|| universe.clone())
}

/// Computes the exact set of graphs in `universe` containing `pattern`,
/// using the dominance filter before VF2 verification.
pub fn covered_graphs(
    fct: &FctIndex,
    ife: &IfeIndex,
    db: &GraphDb,
    pattern: &LabeledGraph,
    universe: &BTreeSet<GraphId>,
) -> BTreeSet<GraphId> {
    let profile = profile_pattern(fct, ife, pattern);
    candidate_graphs(fct, ife, &profile, universe)
        .into_iter()
        .filter(|&id| db.get(id).is_some_and(|g| is_subgraph_of(pattern, g)))
        .collect()
}

/// Parallel + memoized form of [`covered_graphs`]: the dominance filter is
/// unchanged, the surviving candidates are verified through `kernel`
/// (cached per `(pattern, GraphId)`, VF2 in parallel on misses). Always
/// returns the same set as the serial path.
pub fn covered_graphs_with(
    kernel: &MatchKernel,
    fct: &FctIndex,
    ife: &IfeIndex,
    db: &GraphDb,
    pattern: &LabeledGraph,
    universe: &BTreeSet<GraphId>,
) -> BTreeSet<GraphId> {
    let profile = profile_pattern(fct, ife, pattern);
    let candidates: Vec<(GraphId, &LabeledGraph)> = candidate_graphs(fct, ife, &profile, universe)
        .into_iter()
        .filter_map(|id| db.get(id).map(|g| (id, g.as_ref())))
        .collect();
    kernel
        .covered_in(pattern, &candidates)
        .into_iter()
        .zip(&candidates)
        .filter_map(|(hit, &(id, _))| hit.then_some(id))
        .collect()
}

/// Subgraph coverage `scov(p, D) = |G_p| / |D|` over `universe` (§2.2),
/// where the denominator is `denominator` (usually `|D|`, or `|D_s|` when
/// sampling).
pub fn scov(
    fct: &FctIndex,
    ife: &IfeIndex,
    db: &GraphDb,
    pattern: &LabeledGraph,
    universe: &BTreeSet<GraphId>,
    denominator: usize,
) -> f64 {
    if denominator == 0 {
        return 0.0;
    }
    covered_graphs(fct, ife, db, pattern, universe).len() as f64 / denominator as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PatternId;
    use midas_graph::GraphBuilder;
    use midas_mining::tree_key;

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    fn setup() -> (FctIndex, IfeIndex, GraphDb) {
        // DB: G0 = C-O-N-S, G1 = C-O-C, G2 = S-N.
        let db = GraphDb::from_graphs([path(&[0, 1, 2, 3]), path(&[0, 1, 0]), path(&[3, 2])]);
        let features = [path(&[0, 1]), path(&[1, 2])]; // C-O, O-N
        let feature_refs: Vec<(midas_mining::TreeKey, &LabeledGraph)> =
            features.iter().map(|t| (tree_key(t), t)).collect();
        let graph_refs: Vec<(GraphId, &LabeledGraph)> =
            db.iter().map(|(id, g)| (id, g.as_ref())).collect();
        let fct = FctIndex::build(
            feature_refs.iter().map(|(k, t)| (k.clone(), *t)),
            graph_refs.iter().copied(),
            std::iter::empty::<(PatternId, &LabeledGraph)>(),
        );
        let ife = IfeIndex::build(
            BTreeSet::from([EdgeLabel::new(2, 3)]), // N-S infrequent
            graph_refs.iter().copied(),
            std::iter::empty::<(PatternId, &LabeledGraph)>(),
        );
        (fct, ife, db)
    }

    #[test]
    fn profile_counts_features_and_infrequent_edges() {
        let (fct, ife, _) = setup();
        let pattern = path(&[0, 1, 2, 3]); // C-O-N-S
        let profile = profile_pattern(&fct, &ife, &pattern);
        assert_eq!(profile.fct_counts.len(), 2);
        assert_eq!(profile.ife_counts, vec![(EdgeLabel::new(2, 3), 1)]);
    }

    #[test]
    fn dominance_filter_prunes_incompatible_graphs() {
        let (fct, ife, db) = setup();
        let universe: BTreeSet<GraphId> = db.ids().collect();
        let pattern = path(&[0, 1, 2]); // C-O-N
        let profile = profile_pattern(&fct, &ife, &pattern);
        let candidates = candidate_graphs(&fct, &ife, &profile, &universe);
        // Only G0 has both a C-O and an O-N embedding.
        assert_eq!(candidates.len(), 1);
        assert!(candidates.contains(&db.ids().next().unwrap()));
    }

    #[test]
    fn covered_graphs_matches_direct_isomorphism() {
        let (fct, ife, db) = setup();
        let universe: BTreeSet<GraphId> = db.ids().collect();
        for pattern in [
            path(&[0, 1]),
            path(&[0, 1, 2]),
            path(&[2, 3]),
            path(&[0, 1, 0]),
            path(&[3, 3]),
        ] {
            let via_index = covered_graphs(&fct, &ife, &db, &pattern, &universe);
            let direct: BTreeSet<GraphId> = db
                .iter()
                .filter(|(_, g)| is_subgraph_of(&pattern, g))
                .map(|(id, _)| id)
                .collect();
            assert_eq!(via_index, direct, "pattern {pattern:?}");
        }
    }

    #[test]
    fn kernel_covered_graphs_matches_serial() {
        let (fct, ife, db) = setup();
        let universe: BTreeSet<GraphId> = db.ids().collect();
        let kernel = MatchKernel::new(2);
        for pattern in [
            path(&[0, 1]),
            path(&[0, 1, 2]),
            path(&[2, 3]),
            path(&[0, 1, 0]),
            path(&[3, 3]),
        ] {
            let serial = covered_graphs(&fct, &ife, &db, &pattern, &universe);
            let cached = covered_graphs_with(&kernel, &fct, &ife, &db, &pattern, &universe);
            assert_eq!(serial, cached, "pattern {pattern:?}");
            // Repeat: answered from the memo, still identical.
            let again = covered_graphs_with(&kernel, &fct, &ife, &db, &pattern, &universe);
            assert_eq!(serial, again);
        }
        assert!(kernel.cache().stats().hits > 0);
    }

    #[test]
    fn empty_profile_returns_universe() {
        let (fct, ife, db) = setup();
        let universe: BTreeSet<GraphId> = db.ids().collect();
        // A pattern over labels unknown to the indices: P-P.
        let pattern = path(&[4, 4]);
        let profile = profile_pattern(&fct, &ife, &pattern);
        assert!(profile.fct_counts.is_empty());
        assert!(profile.ife_counts.is_empty());
        let candidates = candidate_graphs(&fct, &ife, &profile, &universe);
        assert_eq!(candidates, universe);
        // But verification still rejects everything.
        assert!(covered_graphs(&fct, &ife, &db, &pattern, &universe).is_empty());
    }

    #[test]
    fn scov_respects_universe_and_denominator() {
        let (fct, ife, db) = setup();
        let universe: BTreeSet<GraphId> = db.ids().collect();
        let pattern = path(&[0, 1]); // in G0 and G1
        assert!((scov(&fct, &ife, &db, &pattern, &universe, db.len()) - 2.0 / 3.0).abs() < 1e-12);
        // Restrict the universe to G2 only.
        let small: BTreeSet<GraphId> = db.ids().skip(2).collect();
        assert_eq!(scov(&fct, &ife, &db, &pattern, &small, small.len()), 0.0);
        assert_eq!(scov(&fct, &ife, &db, &pattern, &universe, 0), 0.0);
    }
}
