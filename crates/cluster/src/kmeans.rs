//! k-means over sparse binary feature vectors, seeded with k-means++
//! (§2.3; Arthur & Vassilvitskii \[8\]).
//!
//! Dimensions are few (one per frequent (closed) tree), so centroids are
//! dense `f64` vectors. All randomness is seeded.

use crate::features::FeatureVector;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KmeansResult {
    /// Cluster index for every input vector.
    pub assignment: Vec<usize>,
    /// Final centroids (dense, one per cluster).
    pub centroids: Vec<Vec<f64>>,
    /// Number of Lloyd iterations executed.
    pub iterations: usize,
}

/// Squared Euclidean distance between a dense centroid and a binary vector.
///
/// `dist² = Σ c_j² + Σ_{j active} (1 − 2 c_j)`, computed with a precomputed
/// `Σ c_j²` (`centroid_norm2`).
pub fn dist2_to_centroid(centroid: &[f64], centroid_norm2: f64, v: &FeatureVector) -> f64 {
    let mut d = centroid_norm2;
    for &j in &v.0 {
        let c = centroid[j as usize];
        d += 1.0 - 2.0 * c;
    }
    d.max(0.0)
}

fn norm2(c: &[f64]) -> f64 {
    c.iter().map(|x| x * x).sum()
}

/// Runs k-means++ / Lloyd on `vectors` with `dims` dimensions.
///
/// `k` is clamped to the number of vectors. Empty input yields an empty
/// result. Iteration stops when assignments stabilize or after
/// `max_iterations`.
pub fn kmeans(
    vectors: &[FeatureVector],
    dims: usize,
    k: usize,
    seed: u64,
    max_iterations: usize,
) -> KmeansResult {
    let n = vectors.len();
    if n == 0 || k == 0 {
        return KmeansResult {
            assignment: vec![0; n],
            centroids: Vec::new(),
            iterations: 0,
        };
    }
    let k = k.min(n);
    let mut rng = StdRng::seed_from_u64(seed);

    // k-means++ seeding over the binary vectors.
    let mut seeds: Vec<usize> = Vec::with_capacity(k);
    seeds.push(rng.random_range(0..n));
    let mut best_d2: Vec<f64> = vectors
        .iter()
        .map(|v| v.dist2(&vectors[seeds[0]]))
        .collect();
    while seeds.len() < k {
        let total: f64 = best_d2.iter().sum();
        let next = if total <= f64::EPSILON {
            // All points coincide with some seed; pick uniformly.
            rng.random_range(0..n)
        } else {
            let mut cut: f64 = rng.random::<f64>() * total;
            let mut chosen = n - 1;
            for (i, &d) in best_d2.iter().enumerate() {
                if cut < d {
                    chosen = i;
                    break;
                }
                cut -= d;
            }
            chosen
        };
        seeds.push(next);
        for (i, v) in vectors.iter().enumerate() {
            let d = v.dist2(&vectors[next]);
            if d < best_d2[i] {
                best_d2[i] = d;
            }
        }
    }
    let mut centroids: Vec<Vec<f64>> = seeds
        .iter()
        .map(|&s| {
            let mut c = vec![0.0; dims];
            for &j in &vectors[s].0 {
                c[j as usize] = 1.0;
            }
            c
        })
        .collect();

    let mut assignment = vec![usize::MAX; n];
    let mut iterations = 0;
    for _ in 0..max_iterations {
        iterations += 1;
        // Assign.
        let norms: Vec<f64> = centroids.iter().map(|c| norm2(c)).collect();
        let mut changed = false;
        for (i, v) in vectors.iter().enumerate() {
            let best = (0..centroids.len())
                .min_by(|&a, &b| {
                    dist2_to_centroid(&centroids[a], norms[a], v)
                        .partial_cmp(&dist2_to_centroid(&centroids[b], norms[b], v))
                        .expect("distances are finite")
                })
                .expect("k >= 1");
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        // Update.
        let mut sums = vec![vec![0.0; dims]; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (i, v) in vectors.iter().enumerate() {
            counts[assignment[i]] += 1;
            for &j in &v.0 {
                sums[assignment[i]][j as usize] += 1.0;
            }
        }
        for (c, (sum, count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
            if *count > 0 {
                for (cj, sj) in c.iter_mut().zip(sum) {
                    *cj = sj / *count as f64;
                }
            }
            // Empty clusters keep their old centroid (k-means++ seeding makes
            // this rare; they may be re-populated next round).
        }
    }

    KmeansResult {
        assignment,
        centroids,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(dims: &[u32]) -> FeatureVector {
        FeatureVector(dims.to_vec())
    }

    #[test]
    fn two_obvious_clusters_separate() {
        // Group A active in dims {0,1}; group B in dims {8,9}.
        let vectors = vec![
            v(&[0, 1]),
            v(&[0, 1]),
            v(&[0]),
            v(&[8, 9]),
            v(&[9]),
            v(&[8, 9]),
        ];
        let result = kmeans(&vectors, 10, 2, 42, 50);
        assert_eq!(result.assignment.len(), 6);
        let a = result.assignment[0];
        assert_eq!(result.assignment[1], a);
        assert_eq!(result.assignment[2], a);
        let b = result.assignment[3];
        assert_ne!(a, b);
        assert_eq!(result.assignment[4], b);
        assert_eq!(result.assignment[5], b);
    }

    #[test]
    fn k_clamped_to_n() {
        let vectors = vec![v(&[0]), v(&[1])];
        let result = kmeans(&vectors, 2, 10, 1, 10);
        assert_eq!(result.centroids.len(), 2);
    }

    #[test]
    fn empty_input() {
        let result = kmeans(&[], 5, 3, 1, 10);
        assert!(result.assignment.is_empty());
        assert!(result.centroids.is_empty());
    }

    #[test]
    fn identical_points_one_effective_cluster() {
        let vectors = vec![v(&[1, 2]); 5];
        let result = kmeans(&vectors, 4, 2, 7, 10);
        // All points end in the same cluster (ties resolve identically).
        assert!(result.assignment.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn deterministic_per_seed() {
        let vectors = vec![v(&[0]), v(&[0, 1]), v(&[5]), v(&[5, 6]), v(&[2])];
        let a = kmeans(&vectors, 8, 2, 9, 50);
        let b = kmeans(&vectors, 8, 2, 9, 50);
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn centroid_distance_formula() {
        let centroid = vec![0.5, 0.0, 1.0];
        let n2 = norm2(&centroid);
        let x = v(&[0, 2]);
        // dist² = (0.5-1)² + 0² + (1-1)² = 0.25
        assert!((dist2_to_centroid(&centroid, n2, &x) - 0.25).abs() < 1e-12);
        let y = v(&[1]);
        // dist² = 0.25 + 1 + 1 = 2.25
        assert!((dist2_to_centroid(&centroid, n2, &y) - 2.25).abs() < 1e-12);
    }

    #[test]
    fn k_one_groups_everything() {
        let vectors = vec![v(&[0]), v(&[3]), v(&[7])];
        let result = kmeans(&vectors, 8, 1, 3, 10);
        assert!(result.assignment.iter().all(|&a| a == 0));
    }
}
