//! The [`ClusterSet`]: clusters with centroids and CSGs, built by coarse +
//! fine clustering and maintained incrementally (§4.3–4.4, Algorithm 1
//! lines 1–2 and 6–7).

use crate::features::{FeatureSpace, FeatureVector};
use crate::fine::fine_cluster;
use crate::kmeans::{dist2_to_centroid, kmeans};
use midas_graph::{ClosureGraph, GraphDb, GraphId, LabeledGraph};
use midas_mining::TreeLattice;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Stable identifier of a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterId(pub u64);

impl std::fmt::Display for ClusterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// One graph cluster: members, centroid, and its cluster summary graph.
#[derive(Debug, Clone)]
pub struct Cluster {
    members: BTreeSet<GraphId>,
    centroid: Vec<f64>,
    csg: ClosureGraph,
    dirty: bool,
}

impl Cluster {
    /// Member graph ids.
    pub fn members(&self) -> &BTreeSet<GraphId> {
        &self.members
    }

    /// Number of members `|C_i|`.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the cluster has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The cluster summary graph.
    pub fn csg(&self) -> &ClosureGraph {
        &self.csg
    }

    /// The centroid in feature space.
    pub fn centroid(&self) -> &[f64] {
        &self.centroid
    }

    /// Whether the cluster changed since the last
    /// [`ClusterSet::take_dirty`].
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }
}

/// Clustering parameters.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of coarse (k-means) clusters.
    pub coarse_clusters: usize,
    /// Maximum cluster size `N`; larger clusters are fine-clustered.
    pub max_cluster_size: usize,
    /// Node budget per pairwise MCCS search in fine clustering.
    pub mccs_budget: u64,
    /// Lloyd-iteration cap for k-means.
    pub kmeans_max_iterations: usize,
    /// Seed for k-means++.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            coarse_clusters: 10,
            max_cluster_size: 100,
            mccs_budget: 2_000,
            kmeans_max_iterations: 30,
            seed: 0,
        }
    }
}

/// All clusters of a database, plus the frozen feature space and the cached
/// per-member feature vectors needed for incremental centroid updates.
#[derive(Debug, Clone)]
pub struct ClusterSet {
    config: ClusterConfig,
    feature_space: FeatureSpace,
    clusters: BTreeMap<ClusterId, Cluster>,
    membership: HashMap<GraphId, ClusterId>,
    member_vectors: HashMap<GraphId, FeatureVector>,
    next_id: u64,
}

impl ClusterSet {
    /// Builds the cluster set from scratch: k-means++ coarse clustering on
    /// feature vectors, fine clustering of oversized clusters, then one CSG
    /// per cluster (built in parallel).
    pub fn build(
        db: &GraphDb,
        lattice: &TreeLattice,
        feature_space: FeatureSpace,
        config: ClusterConfig,
    ) -> Self {
        let ids: Vec<GraphId> = db.ids().collect();
        let vectors: Vec<FeatureVector> = ids
            .iter()
            .map(|&id| feature_space.vector(lattice, id))
            .collect();
        let result = kmeans(
            &vectors,
            feature_space.dims(),
            config.coarse_clusters,
            config.seed,
            config.kmeans_max_iterations,
        );
        // Group members per coarse cluster.
        let mut coarse: BTreeMap<usize, Vec<GraphId>> = BTreeMap::new();
        for (i, &id) in ids.iter().enumerate() {
            let slot = result.assignment.get(i).copied().unwrap_or(0);
            coarse.entry(slot).or_default().push(id);
        }
        // Fine-cluster oversized groups.
        let mut groups: Vec<Vec<GraphId>> = Vec::new();
        for members in coarse.into_values() {
            if members.len() <= config.max_cluster_size {
                groups.push(members);
            } else {
                let with_graphs: Vec<(GraphId, &LabeledGraph)> = members
                    .iter()
                    .map(|&id| (id, db.get(id).expect("live id").as_ref()))
                    .collect();
                groups.extend(fine_cluster(
                    &with_graphs,
                    config.max_cluster_size,
                    config.mccs_budget,
                ));
            }
        }
        let mut set = ClusterSet {
            config,
            feature_space,
            clusters: BTreeMap::new(),
            membership: HashMap::new(),
            member_vectors: HashMap::new(),
            next_id: 0,
        };
        for (i, &id) in ids.iter().enumerate() {
            set.member_vectors.insert(id, vectors[i].clone());
        }
        // Build CSGs in parallel (one closure per cluster).
        let csgs: Vec<ClosureGraph> = build_csgs_parallel(db, &groups);
        for (members, csg) in groups.into_iter().zip(csgs) {
            set.install_cluster(members, csg);
        }
        set
    }

    fn install_cluster(&mut self, members: Vec<GraphId>, csg: ClosureGraph) -> ClusterId {
        let id = ClusterId(self.next_id);
        self.next_id += 1;
        let centroid = self.mean_vector(&members);
        for &m in &members {
            self.membership.insert(m, id);
        }
        self.clusters.insert(
            id,
            Cluster {
                members: members.into_iter().collect(),
                centroid,
                csg,
                dirty: true,
            },
        );
        id
    }

    fn mean_vector(&self, members: &[GraphId]) -> Vec<f64> {
        let mut c = vec![0.0; self.feature_space.dims()];
        if members.is_empty() {
            return c;
        }
        for id in members {
            if let Some(v) = self.member_vectors.get(id) {
                for &j in &v.0 {
                    c[j as usize] += 1.0;
                }
            }
        }
        let n = members.len() as f64;
        for x in &mut c {
            *x /= n;
        }
        c
    }

    /// The frozen feature space.
    pub fn feature_space(&self) -> &FeatureSpace {
        &self.feature_space
    }

    /// The configuration.
    pub fn config(&self) -> ClusterConfig {
        self.config
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether there are no clusters.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Iterates `(id, cluster)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ClusterId, &Cluster)> {
        self.clusters.iter().map(|(&id, c)| (id, c))
    }

    /// Looks up a cluster.
    pub fn get(&self, id: ClusterId) -> Option<&Cluster> {
        self.clusters.get(&id)
    }

    /// The cluster a graph belongs to.
    pub fn cluster_of(&self, graph: GraphId) -> Option<ClusterId> {
        self.membership.get(&graph).copied()
    }

    /// Total members across clusters.
    pub fn total_members(&self) -> usize {
        self.clusters.values().map(|c| c.len()).sum()
    }

    /// Assigns a newly inserted graph to the nearest cluster by centroid
    /// distance (Algorithm 1 line 1), updates that cluster's CSG (§4.4 step
    /// 1) and centroid, and fine-clusters if the size cap is exceeded.
    ///
    /// Returns the ids of every cluster affected (the receiving cluster, or
    /// the clusters created by a split).
    ///
    /// The lattice must already reflect the insertion (supports include
    /// `id`), which is the order Algorithm 1 establishes.
    pub fn assign(
        &mut self,
        db: &GraphDb,
        lattice: &TreeLattice,
        id: GraphId,
        graph: &Arc<LabeledGraph>,
    ) -> Vec<ClusterId> {
        let v = self.feature_space.vector(lattice, id);
        self.member_vectors.insert(id, v.clone());
        // Nearest centroid.
        let target = self
            .clusters
            .iter()
            .min_by(|(_, a), (_, b)| {
                let da = dist2_to_centroid(&a.centroid, norm2(&a.centroid), &v);
                let db_ = dist2_to_centroid(&b.centroid, norm2(&b.centroid), &v);
                da.partial_cmp(&db_).expect("finite")
            })
            .map(|(&cid, _)| cid);
        let Some(target) = target else {
            // First graph ever: create a singleton cluster.
            let mut csg = ClosureGraph::new();
            csg.insert_graph(id, graph);
            return vec![self.install_cluster(vec![id], csg)];
        };
        {
            let cluster = self.clusters.get_mut(&target).expect("target exists");
            let m = cluster.members.len() as f64;
            cluster.members.insert(id);
            cluster.csg.insert_graph(id, graph);
            cluster.dirty = true;
            // Incremental centroid update: c' = (c·m + x) / (m + 1).
            for cj in cluster.centroid.iter_mut() {
                *cj = *cj * m / (m + 1.0);
            }
            for &j in &v.0 {
                cluster.centroid[j as usize] += 1.0 / (m + 1.0);
            }
        }
        self.membership.insert(id, target);
        if self.clusters[&target].members.len() > self.config.max_cluster_size {
            self.split(db, target)
        } else {
            vec![target]
        }
    }

    /// Removes a deleted graph from its cluster (Algorithm 1 line 2),
    /// updating the CSG (§4.4 step 2) and centroid. Returns the affected
    /// cluster id, or `None` if the graph was not clustered. Empty clusters
    /// are dropped.
    pub fn remove(&mut self, id: GraphId, graph: &LabeledGraph) -> Option<ClusterId> {
        let cid = self.membership.remove(&id)?;
        let v = self.member_vectors.remove(&id).unwrap_or_default();
        let cluster = self.clusters.get_mut(&cid).expect("membership consistent");
        cluster.members.remove(&id);
        cluster.csg.remove_graph(id, graph);
        cluster.dirty = true;
        let m = cluster.members.len() as f64;
        if m == 0.0 {
            self.clusters.remove(&cid);
        } else {
            // c' = (c·(m+1) − x) / m.
            for cj in cluster.centroid.iter_mut() {
                *cj = *cj * (m + 1.0) / m;
            }
            for &j in &v.0 {
                cluster.centroid[j as usize] -= 1.0 / m;
            }
        }
        Some(cid)
    }

    /// Splits an oversized cluster via fine clustering; the original cluster
    /// is replaced by the resulting groups (fresh ids, fresh CSGs).
    fn split(&mut self, db: &GraphDb, cid: ClusterId) -> Vec<ClusterId> {
        let cluster = self.clusters.remove(&cid).expect("cluster exists");
        let members: Vec<GraphId> = cluster.members.iter().copied().collect();
        for id in &members {
            self.membership.remove(id);
        }
        let with_graphs: Vec<(GraphId, &LabeledGraph)> = members
            .iter()
            .map(|&id| (id, db.get(id).expect("live id").as_ref()))
            .collect();
        let groups = fine_cluster(
            &with_graphs,
            self.config.max_cluster_size,
            self.config.mccs_budget,
        );
        midas_obs::obs_debug!(
            "cluster::clusters",
            "fine-clustered oversized cluster of {} members into {} groups",
            members.len(),
            groups.len()
        );
        midas_obs::counter_add!("cluster.splits", 1);
        let csgs = build_csgs_parallel(db, &groups);
        groups
            .into_iter()
            .zip(csgs)
            .map(|(group, csg)| self.install_cluster(group, csg))
            .collect()
    }

    /// Returns the set of dirty cluster ids and clears the flags. These are
    /// the "newly-generated and modified clusters" whose CSGs feed candidate
    /// generation (§4.3, §5).
    pub fn take_dirty(&mut self) -> Vec<ClusterId> {
        let mut dirty = Vec::new();
        for (&id, cluster) in self.clusters.iter_mut() {
            if cluster.dirty {
                dirty.push(id);
                cluster.dirty = false;
            }
        }
        dirty
    }
}

fn norm2(c: &[f64]) -> f64 {
    c.iter().map(|x| x * x).sum()
}

/// Builds one CSG per group, distributing groups across threads with the
/// shared execution helpers ([`midas_graph::exec`]).
fn build_csgs_parallel(db: &GraphDb, groups: &[Vec<GraphId>]) -> Vec<ClosureGraph> {
    midas_graph::exec::par_map(0, groups, |group| build_one_csg(db, group))
}

fn build_one_csg(db: &GraphDb, group: &[GraphId]) -> ClosureGraph {
    ClosureGraph::from_graphs(
        group
            .iter()
            .map(|&id| (id, db.get(id).expect("live id").as_ref())),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_graph::GraphBuilder;
    use midas_mining::{mine_lattice, MiningConfig};

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    fn mining_config() -> MiningConfig {
        MiningConfig {
            sup_min: 0.2,
            max_edges: 3,
        }
    }

    /// Two chemically distinct families: C-O chains and S-P chains.
    fn two_family_db() -> GraphDb {
        let mut graphs = Vec::new();
        for _ in 0..4 {
            graphs.push(path(&[0, 1, 0, 1]));
            graphs.push(path(&[3, 4, 3, 4]));
        }
        GraphDb::from_graphs(graphs)
    }

    fn build_set(db: &GraphDb, k: usize, max_size: usize) -> (ClusterSet, TreeLattice) {
        let graphs: Vec<_> = db.iter().map(|(id, g)| (id, g.as_ref())).collect();
        let lattice = mine_lattice(&graphs, &mining_config());
        let space = FeatureSpace::from_frequent(&lattice, 0.2, db.len());
        let set = ClusterSet::build(
            db,
            &lattice,
            space,
            ClusterConfig {
                coarse_clusters: k,
                max_cluster_size: max_size,
                ..ClusterConfig::default()
            },
        );
        (set, lattice)
    }

    #[test]
    fn build_partitions_all_graphs() {
        let db = two_family_db();
        let (set, _) = build_set(&db, 2, 100);
        assert_eq!(set.total_members(), db.len());
        for (id, _) in db.iter() {
            assert!(set.cluster_of(id).is_some(), "graph {id} unclustered");
        }
    }

    #[test]
    fn families_separate_into_clusters() {
        let db = two_family_db();
        let (set, _) = build_set(&db, 2, 100);
        assert_eq!(set.len(), 2);
        // Each cluster is label-pure.
        for (_, cluster) in set.iter() {
            let labels: BTreeSet<u32> = cluster
                .members()
                .iter()
                .flat_map(|&id| db.get(id).unwrap().labels().to_vec())
                .collect();
            assert!(
                labels == BTreeSet::from([0, 1]) || labels == BTreeSet::from([3, 4]),
                "mixed cluster: {labels:?}"
            );
        }
    }

    #[test]
    fn csgs_cover_cluster_members() {
        let db = two_family_db();
        let (set, _) = build_set(&db, 2, 100);
        for (_, cluster) in set.iter() {
            assert_eq!(cluster.csg().members().len(), cluster.len());
        }
    }

    #[test]
    fn max_cluster_size_is_enforced_at_build() {
        let db = two_family_db();
        let (set, _) = build_set(&db, 1, 3);
        assert!(set.iter().all(|(_, c)| c.len() <= 3));
        assert_eq!(set.total_members(), db.len());
    }

    #[test]
    fn assign_routes_to_matching_family() {
        let mut db = two_family_db();
        let (mut set, mut lattice) = build_set(&db, 2, 100);
        set.take_dirty();
        // Insert a new C-O graph; extend lattice supports first (as the
        // framework does).
        let newcomer = path(&[0, 1, 0]);
        let id = db.insert(newcomer);
        let graph = db.get(id).unwrap().clone();
        let keys: Vec<_> = lattice.iter().map(|(k, _)| k.clone()).collect();
        for key in keys {
            let tree = lattice.get(&key).unwrap().tree.clone();
            if midas_graph::isomorphism::is_subgraph_of(&tree, &graph) {
                let mut entry = lattice.get(&key).unwrap().clone();
                entry.support.insert(id);
                lattice.insert(key, entry);
            }
        }
        let affected = set.assign(&db, &lattice, id, &graph);
        assert_eq!(affected.len(), 1);
        let cid = set.cluster_of(id).unwrap();
        // Its cluster must be the C-O one.
        let peer = set
            .get(cid)
            .unwrap()
            .members()
            .iter()
            .next()
            .copied()
            .unwrap();
        let peer_labels: BTreeSet<u32> = db.get(peer).unwrap().labels().iter().copied().collect();
        assert!(peer_labels.contains(&0));
        // Dirty flag set.
        assert!(set.get(cid).unwrap().is_dirty());
        // CSG includes the newcomer.
        assert!(set.get(cid).unwrap().csg().members().contains(&id));
    }

    #[test]
    fn assign_splits_oversized_cluster() {
        let mut db = GraphDb::from_graphs((0..3).map(|_| path(&[0, 1])));
        let (mut set, lattice) = build_set(&db, 1, 3);
        assert_eq!(set.len(), 1);
        let id = db.insert(path(&[0, 1]));
        let graph = db.get(id).unwrap().clone();
        let affected = set.assign(&db, &lattice, id, &graph);
        assert!(affected.len() >= 2, "split must create clusters");
        assert!(set.iter().all(|(_, c)| c.len() <= 3));
        assert_eq!(set.total_members(), 4);
    }

    #[test]
    fn remove_updates_membership_and_csg() {
        let db = two_family_db();
        let (mut set, _) = build_set(&db, 2, 100);
        let victim = db.ids().next().unwrap();
        let graph = db.get(victim).unwrap().clone();
        let cid = set.cluster_of(victim).unwrap();
        let before = set.get(cid).unwrap().len();
        let affected = set.remove(victim, &graph);
        assert_eq!(affected, Some(cid));
        assert_eq!(set.get(cid).unwrap().len(), before - 1);
        assert!(set.cluster_of(victim).is_none());
        assert!(!set.get(cid).unwrap().csg().members().contains(&victim));
    }

    #[test]
    fn removing_last_member_drops_cluster() {
        let db = GraphDb::from_graphs([path(&[0, 1])]);
        let (mut set, _) = build_set(&db, 1, 10);
        let id = db.ids().next().unwrap();
        let graph = db.get(id).unwrap().clone();
        set.remove(id, &graph);
        assert!(set.is_empty());
    }

    #[test]
    fn remove_unknown_graph_is_none() {
        let db = two_family_db();
        let (mut set, _) = build_set(&db, 2, 100);
        assert_eq!(set.remove(GraphId(999), &path(&[0, 1])), None);
    }

    #[test]
    fn assign_into_empty_set_creates_cluster() {
        let mut db = GraphDb::new();
        let (mut set, lattice) = {
            let empty = GraphDb::new();
            build_set(&empty, 2, 10)
        };
        let id = db.insert(path(&[0, 1]));
        let graph = db.get(id).unwrap().clone();
        let affected = set.assign(&db, &lattice, id, &graph);
        assert_eq!(affected.len(), 1);
        assert_eq!(set.total_members(), 1);
    }

    #[test]
    fn take_dirty_clears_flags() {
        let db = two_family_db();
        let (mut set, _) = build_set(&db, 2, 100);
        let dirty = set.take_dirty();
        assert_eq!(dirty.len(), set.len(), "all fresh clusters are dirty");
        assert!(set.take_dirty().is_empty());
    }

    #[test]
    fn centroid_updates_match_rebuild() {
        let mut db = two_family_db();
        let (mut set, lattice) = build_set(&db, 2, 100);
        let id = db.insert(path(&[0, 1, 0, 1]));
        let graph = db.get(id).unwrap().clone();
        // Update lattice supports as the framework would.
        let mut lattice = lattice;
        let keys: Vec<_> = lattice.iter().map(|(k, _)| k.clone()).collect();
        for key in keys {
            let entry = lattice.get(&key).unwrap();
            if midas_graph::isomorphism::is_subgraph_of(&entry.tree, &graph) {
                let mut e = entry.clone();
                e.support.insert(id);
                lattice.insert(key, e);
            }
        }
        set.assign(&db, &lattice, id, &graph);
        let cid = set.cluster_of(id).unwrap();
        let cluster = set.get(cid).unwrap();
        // Recompute mean from scratch and compare.
        let members: Vec<GraphId> = cluster.members().iter().copied().collect();
        let mut expect = vec![0.0; set.feature_space().dims()];
        for m in &members {
            let v = set.feature_space().vector(&lattice, *m);
            for &j in &v.0 {
                expect[j as usize] += 1.0;
            }
        }
        for x in &mut expect {
            *x /= members.len() as f64;
        }
        for (got, want) in cluster.centroid().iter().zip(&expect) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }
}
