//! # midas-cluster
//!
//! Small-graph clustering and cluster summary graphs (CSGs) for
//! CATAPULT / CATAPULT++ / MIDAS (§2.3, §4.3–4.4 of the paper).
//!
//! * [`features`] — sparse binary feature vectors over frequent (closed)
//!   trees. Feature membership comes straight from the exact support sets
//!   maintained by `midas-mining`, so no isomorphism tests are needed here.
//! * [`mod@kmeans`] — k-means with k-means++ seeding over those vectors
//!   (the *coarse clustering* step).
//! * [`fine`] — MCCS-similarity-based splitting of oversized coarse
//!   clusters (the *fine clustering* step, max cluster size `N`).
//! * [`clusters`] — the [`ClusterSet`]: clusters with centroids and CSGs,
//!   plus the incremental maintenance of §4.3 (assign / remove /
//!   re-fine-cluster) and §4.4 (CSG edge-support updates).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clusters;
pub mod features;
pub mod fine;
pub mod kmeans;

pub use clusters::{Cluster, ClusterConfig, ClusterId, ClusterSet};
pub use features::{FeatureSpace, FeatureVector};
pub use kmeans::{kmeans, KmeansResult};
