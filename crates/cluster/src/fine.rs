//! Fine clustering (§2.3): splitting oversized coarse clusters by MCCS
//! similarity.
//!
//! A coarse cluster larger than the maximum cluster size `N` is replaced by
//! smaller clusters of at most `N` graphs each, grouping graphs with high
//! `ω_MCCS` similarity to a seed (the cluster's largest graph). This is the
//! greedy realization of the fine-clustering objective: members of a fine
//! cluster are more MCCS-similar to each other than to members of other
//! fine clusters.

use midas_graph::mccs::mccs_similarity;
use midas_graph::{GraphId, LabeledGraph};

/// Splits `members` into groups of at most `max_size`, grouping by MCCS
/// similarity to a seed graph. Groups come back in creation order; input
/// order within a group is not preserved.
///
/// `budget` caps each pairwise MCCS search (see
/// [`midas_graph::mccs::mccs_edges`]).
pub fn fine_cluster(
    members: &[(GraphId, &LabeledGraph)],
    max_size: usize,
    budget: u64,
) -> Vec<Vec<GraphId>> {
    assert!(max_size >= 1, "max cluster size must be positive");
    if members.len() <= max_size {
        return vec![members.iter().map(|&(id, _)| id).collect()];
    }
    let mut pool: Vec<(GraphId, &LabeledGraph)> = members.to_vec();
    let mut groups = Vec::new();
    while !pool.is_empty() {
        if pool.len() <= max_size {
            groups.push(pool.drain(..).map(|(id, _)| id).collect());
            break;
        }
        // Seed: the largest remaining graph (ties by id for determinism).
        let seed_idx = pool
            .iter()
            .enumerate()
            .max_by_key(|(_, (id, g))| (g.edge_count(), std::cmp::Reverse(*id)))
            .map(|(i, _)| i)
            .expect("pool non-empty");
        let (seed_id, seed_graph) = pool.swap_remove(seed_idx);
        // Rank the rest by similarity to the seed.
        let mut scored: Vec<(f64, usize)> = pool
            .iter()
            .enumerate()
            .map(|(i, (_, g))| (mccs_similarity(seed_graph, g, budget), i))
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite").then(a.1.cmp(&b.1)));
        let take = (max_size - 1).min(scored.len());
        let mut chosen_idx: Vec<usize> = scored[..take].iter().map(|&(_, i)| i).collect();
        chosen_idx.sort_unstable_by(|a, b| b.cmp(a)); // remove back-to-front
        let mut group = vec![seed_id];
        for idx in chosen_idx {
            group.push(pool.swap_remove(idx).0);
        }
        groups.push(group);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_graph::GraphBuilder;

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    fn gid(i: u64) -> GraphId {
        GraphId(i)
    }

    #[test]
    fn small_input_stays_whole() {
        let a = path(&[0, 1]);
        let b = path(&[0, 2]);
        let members = vec![(gid(1), &a), (gid(2), &b)];
        let groups = fine_cluster(&members, 5, 1000);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 2);
    }

    #[test]
    fn oversized_cluster_splits_to_max_size() {
        let graphs: Vec<LabeledGraph> = (0..7).map(|i| path(&[i % 3, (i + 1) % 3])).collect();
        let members: Vec<(GraphId, &LabeledGraph)> = graphs
            .iter()
            .enumerate()
            .map(|(i, g)| (gid(i as u64), g))
            .collect();
        let groups = fine_cluster(&members, 3, 1000);
        assert!(groups.iter().all(|g| g.len() <= 3));
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, 7);
        // No id lost or duplicated.
        let mut all: Vec<GraphId> = groups.concat();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 7);
    }

    #[test]
    fn similar_graphs_group_together() {
        // Two families: C-O-C chains vs S-S-S chains, max size 3.
        let family_a: Vec<LabeledGraph> = (0..3).map(|_| path(&[0, 1, 0, 1])).collect();
        let family_b: Vec<LabeledGraph> = (0..3).map(|_| path(&[3, 3, 3, 3])).collect();
        let mut members: Vec<(GraphId, &LabeledGraph)> = Vec::new();
        for (i, g) in family_a.iter().enumerate() {
            members.push((gid(i as u64), g));
        }
        for (i, g) in family_b.iter().enumerate() {
            members.push((gid(10 + i as u64), g));
        }
        let groups = fine_cluster(&members, 3, 2000);
        assert_eq!(groups.len(), 2);
        for group in &groups {
            let in_a = group.iter().filter(|id| id.0 < 10).count();
            assert!(
                in_a == 0 || in_a == group.len(),
                "families must not mix: {groups:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_max_size_panics() {
        let a = path(&[0, 1]);
        fine_cluster(&[(gid(1), &a)], 0, 100);
    }
}
