//! Feature vectors for coarse clustering (§2.3, §3.3).
//!
//! CATAPULT uses frequent subtrees (FS) as clustering features; CATAPULT++
//! and MIDAS replace them with frequent **closed** trees (FCT), which are
//! fewer and maintainable (§3.3). A graph's feature vector is binary:
//! dimension `j` is set iff the graph contains feature tree `j` — which is
//! exactly membership in that tree's support set, so vectors are read
//! directly off the [`midas_mining::TreeLattice`].

use midas_graph::GraphId;
use midas_mining::{TreeKey, TreeLattice};

/// A frozen feature basis: an ordered set of tree keys.
#[derive(Debug, Clone, Default)]
pub struct FeatureSpace {
    keys: Vec<TreeKey>,
}

/// A sparse binary feature vector: the sorted set of active dimensions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FeatureVector(pub Vec<u32>);

impl FeatureVector {
    /// Number of active dimensions.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether no dimension is active.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Squared Euclidean distance to another binary vector:
    /// `|a| + |b| − 2 |a ∩ b|`.
    pub fn dist2(&self, other: &FeatureVector) -> f64 {
        let mut common = 0usize;
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    common += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        (self.0.len() + other.0.len() - 2 * common) as f64
    }
}

impl FeatureSpace {
    /// Builds the basis from the lattice's frequent **closed** trees at
    /// `sup_min` (the CATAPULT++/MIDAS choice).
    pub fn from_fct(lattice: &TreeLattice, sup_min: f64, db_len: usize) -> Self {
        FeatureSpace {
            keys: lattice
                .frequent_closed(sup_min, db_len)
                .into_iter()
                .map(|(k, _)| k.clone())
                .collect(),
        }
    }

    /// Builds the basis from all frequent trees (the original CATAPULT
    /// choice, kept for the CATAPULT baseline).
    pub fn from_frequent(lattice: &TreeLattice, sup_min: f64, db_len: usize) -> Self {
        FeatureSpace {
            keys: lattice
                .frequent(sup_min, db_len)
                .into_iter()
                .map(|(k, _)| k.clone())
                .collect(),
        }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.keys.len()
    }

    /// The basis keys, in dimension order.
    pub fn keys(&self) -> &[TreeKey] {
        &self.keys
    }

    /// The feature vector of graph `id`, read off the lattice supports.
    ///
    /// Features whose key is no longer tracked in the lattice contribute 0
    /// (they have effectively left the basis).
    pub fn vector(&self, lattice: &TreeLattice, id: GraphId) -> FeatureVector {
        let dims = self
            .keys
            .iter()
            .enumerate()
            .filter_map(|(j, key)| {
                lattice
                    .get(key)
                    .is_some_and(|e| e.support.contains(&id))
                    .then_some(j as u32)
            })
            .collect();
        FeatureVector(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_graph::{GraphBuilder, GraphDb, LabeledGraph};
    use midas_mining::{mine_lattice, MiningConfig};

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    fn setup() -> (GraphDb, TreeLattice) {
        let db = GraphDb::from_graphs([
            path(&[0, 1, 2]),
            path(&[0, 1]),
            path(&[0, 1, 2]),
            path(&[3, 3]),
        ]);
        let graphs: Vec<_> = db.iter().map(|(id, g)| (id, g.as_ref())).collect();
        let lattice = mine_lattice(
            &graphs,
            &MiningConfig {
                sup_min: 0.25,
                max_edges: 3,
            },
        );
        (db, lattice)
    }

    #[test]
    fn vectors_reflect_supports() {
        let (db, lattice) = setup();
        let space = FeatureSpace::from_frequent(&lattice, 0.25, db.len());
        assert!(space.dims() >= 3);
        let ids: Vec<_> = db.ids().collect();
        let v0 = space.vector(&lattice, ids[0]); // C-O-N
        let v3 = space.vector(&lattice, ids[3]); // S-S
        assert!(!v0.is_empty());
        assert!(!v3.is_empty());
        // Disjoint chemistry -> no overlap.
        assert_eq!(
            v0.dist2(&v3),
            (v0.len() + v3.len()) as f64,
            "no shared features"
        );
    }

    #[test]
    fn identical_graphs_have_zero_distance() {
        let (db, lattice) = setup();
        let space = FeatureSpace::from_frequent(&lattice, 0.25, db.len());
        let ids: Vec<_> = db.ids().collect();
        let a = space.vector(&lattice, ids[0]);
        let b = space.vector(&lattice, ids[2]);
        assert_eq!(a.dist2(&b), 0.0);
    }

    #[test]
    fn fct_basis_is_subset_of_frequent_basis() {
        let (db, lattice) = setup();
        let fct = FeatureSpace::from_fct(&lattice, 0.25, db.len());
        let all = FeatureSpace::from_frequent(&lattice, 0.25, db.len());
        assert!(fct.dims() <= all.dims());
        for key in fct.keys() {
            assert!(all.keys().contains(key));
        }
    }

    #[test]
    fn missing_lattice_key_contributes_zero() {
        let (db, mut lattice) = setup();
        let space = FeatureSpace::from_frequent(&lattice, 0.25, db.len());
        let key = space.keys()[0].clone();
        lattice.remove(&key);
        let id = db.ids().next().unwrap();
        let v = space.vector(&lattice, id);
        assert!(!v.0.contains(&0), "removed feature must be inactive");
    }

    #[test]
    fn dist2_is_symmetric_and_nonnegative() {
        let a = FeatureVector(vec![0, 2, 5]);
        let b = FeatureVector(vec![2, 3]);
        assert_eq!(a.dist2(&b), b.dist2(&a));
        assert_eq!(a.dist2(&b), 3.0); // |a|+|b|-2*1 = 3+2-2
        assert_eq!(a.dist2(&a), 0.0);
    }
}
