//! The closed loop, driven over HTTP against a `midas-serve` daemon.
//!
//! Same shape as [`crate::run`] — one driver applying a batch per tick
//! while N users formulate against the live pattern set — but every
//! interaction crosses the wire: users `GET /v1/{tenant}/patterns`
//! (so *read latency* is a real HTTP round trip), score staleness with
//! a `GET /v1/{tenant}/epoch` probe plus client-side graphlet-drift
//! math, and the driver ships each tick's batch as a server-side
//! generator spec through `POST /v1/{tenant}/updates?mode=sync`. The
//! tick rotation (novel-family wave every 5th tick, deletions on 5k+3,
//! growth otherwise) matches the in-process driver, so the two reports
//! are comparable.

use crate::{LoadConfig, LoadReport, QuantileLine, TickCounters};
use midas_datagen::MotifKind;
use midas_graph::{GraphletDistribution, LabeledGraph};
use midas_obs::sli::{self, QuerySample, TickSummary};
use midas_serve::client::ServeClient;
use midas_serve::{GenOp, GenSpec};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// One user's loop over HTTP: GET the pattern payload, formulate the
/// query locally (live + frozen baseline), probe the epoch endpoint to
/// score how stale the payload already is, record. Runs until `stop`.
fn http_user_loop(
    client: &ServeClient,
    tenant: &str,
    pool: &RwLock<Arc<Vec<LabeledGraph>>>,
    baseline: &[LabeledGraph],
    tickc: &TickCounters,
    stop: &AtomicBool,
    seed: u64,
) -> Vec<QuerySample> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samples = Vec::new();
    while !stop.load(Ordering::Acquire) {
        let queries = Arc::clone(&pool.read().unwrap_or_else(|e| e.into_inner()));
        if queries.is_empty() {
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        let query = &queries[rng.random_range(0..queries.len())];

        let read_start = Instant::now();
        let payload = match client.patterns(tenant) {
            Ok(p) => p,
            Err(_) => break, // daemon gone (shutdown race): stop sampling
        };
        let read_ns = read_start.elapsed().as_nanos().min(u64::MAX as u128) as u64;

        let form_start = Instant::now();
        let live = midas_queryform::formulate(query, &payload.patterns);
        let formulate_ns = form_start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let base = midas_queryform::formulate(query, baseline);

        // Staleness of the payload we just formulated against, judged by
        // what the daemon is publishing *now*.
        let (staleness_batches, staleness_drift) = match client.epoch(tenant) {
            Ok(latest) => (
                latest.epoch.saturating_sub(payload.epoch),
                GraphletDistribution::from_freqs(payload.graphlets)
                    .euclidean_distance(&GraphletDistribution::from_freqs(latest.graphlets)),
            ),
            Err(_) => (0, 0.0),
        };
        let sample = QuerySample {
            read_ns,
            formulate_ns,
            steps_live: live.steps as u64,
            steps_baseline: base.steps as u64,
            staleness_batches,
            staleness_drift,
        };
        sli::record_query(&sample);
        tickc.observe(&sample);
        samples.push(sample);
    }
    samples
}

/// The driver's generator spec for `tick` — the same rotation as the
/// in-process [`crate::run`] driver, expressed as a server-side spec so
/// the batch is synthesized against the daemon's current database.
fn tick_spec(cfg: &LoadConfig, db_len: u64, tick: u64) -> GenSpec {
    let seed = cfg.seed.wrapping_add(1_000 + tick);
    match tick % 5 {
        0 => GenSpec {
            op: GenOp::Novel,
            percent: 0.0,
            count: ((db_len / 5).max(1)) as usize,
            motif: Some(if tick.is_multiple_of(2) {
                MotifKind::BoronicEster
            } else {
                MotifKind::Phosphate
            }),
            seed,
        },
        3 => GenSpec {
            op: GenOp::Deletion,
            percent: cfg.batch_percent,
            count: 0,
            motif: None,
            seed,
        },
        _ => GenSpec {
            op: GenOp::Growth,
            percent: cfg.batch_percent,
            count: 0,
            motif: None,
            seed,
        },
    }
}

/// Runs the closed loop against tenant `tenant` of the daemon at `addr`.
///
/// The baseline pattern set (the no-maintenance comparison) is the
/// payload of the first `GET /patterns` — callers should run this
/// against a freshly created tenant so the baseline is epoch 0, matching
/// the in-process harness. Errors if the daemon or tenant is
/// unreachable; individual user-side HTTP errors end that user's
/// sampling without failing the run.
pub fn run_http(addr: &str, tenant: &str, cfg: &LoadConfig) -> Result<LoadReport, String> {
    let started = Instant::now();
    let client = ServeClient::new(addr);
    let first = client.patterns(tenant)?;
    let baseline: Vec<LabeledGraph> = first.patterns.clone();
    let pool: RwLock<Arc<Vec<LabeledGraph>>> = RwLock::new(Arc::new(client.queries(
        tenant,
        cfg.pool,
        cfg.query_edges,
        cfg.seed,
    )?));
    let stop = AtomicBool::new(false);
    let tickc = TickCounters::default();

    let mut all: Vec<QuerySample> = Vec::new();
    let mut driver_err: Option<String> = None;
    std::thread::scope(|scope| {
        let mut workers = Vec::with_capacity(cfg.users);
        for u in 0..cfg.users {
            let client = client.clone();
            let pool = &pool;
            let baseline = &baseline;
            let tickc = &tickc;
            let stop = &stop;
            let seed = cfg.seed ^ ((u as u64 + 1) << 32);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("midas-http-user-{u}"))
                    .spawn_scoped(scope, move || {
                        http_user_loop(&client, tenant, pool, baseline, tickc, stop, seed)
                    })
                    .expect("spawn http load user"),
            );
        }

        for tick in 1..=cfg.ticks {
            let outcome = client
                .epoch(tenant)
                .and_then(|e| client.post_generate(tenant, &tick_spec(cfg, e.db_len, tick), true))
                .and_then(|reply| {
                    if reply.status == 200 {
                        Ok(())
                    } else {
                        Err(format!(
                            "tick {tick}: HTTP {} {}",
                            reply.status,
                            reply.body.trim()
                        ))
                    }
                })
                .and_then(|()| {
                    client.queries(
                        tenant,
                        cfg.pool,
                        cfg.query_edges,
                        cfg.seed.wrapping_add(tick),
                    )
                });
            let queries = match outcome {
                Ok(queries) => queries,
                Err(e) => {
                    driver_err = Some(e);
                    break;
                }
            };
            *pool.write().unwrap_or_else(|e| e.into_inner()) = Arc::new(queries);
            std::thread::sleep(Duration::from_millis(cfg.tick_ms));
            let (queries, steps_live, steps_baseline, stale_max, drift_max) = tickc.drain();
            sli::record_tick(TickSummary {
                tick,
                epoch: client.epoch(tenant).map(|e| e.epoch).unwrap_or(0),
                queries,
                steps_live,
                steps_baseline,
                reduction: sli::reduction_from_steps(steps_live, steps_baseline),
                staleness_batches_max: stale_max,
                staleness_drift_max: drift_max,
                unix_ms: midas_obs::flight::unix_ms(),
            });
        }
        stop.store(true, Ordering::Release);
        for w in workers {
            all.extend(w.join().expect("http load user panicked"));
        }
    });
    if let Some(e) = driver_err {
        return Err(e);
    }

    let steps_live: u64 = all.iter().map(|s| s.steps_live).sum();
    let steps_baseline: u64 = all.iter().map(|s| s.steps_baseline).sum();
    let drift_sum: f64 = all.iter().map(|s| s.staleness_drift).sum();
    Ok(LoadReport {
        users: cfg.users,
        ticks: cfg.ticks,
        queries: all.len() as u64,
        steps_live,
        steps_baseline,
        reduction: sli::reduction_from_steps(steps_live, steps_baseline),
        read_ns: QuantileLine::from_samples(all.iter().map(|s| s.read_ns).collect()),
        formulate_ns: QuantileLine::from_samples(all.iter().map(|s| s.formulate_ns).collect()),
        staleness_batches: QuantileLine::from_samples(
            all.iter().map(|s| s.staleness_batches).collect(),
        ),
        staleness_drift_mean: if all.is_empty() {
            0.0
        } else {
            drift_sum / all.len() as f64
        },
        staleness_drift_max: all.iter().map(|s| s.staleness_drift).fold(0.0, f64::max),
        final_epoch: client.epoch(tenant).map(|e| e.epoch).unwrap_or(0),
        wall_ms: started.elapsed().as_millis().min(u64::MAX as u128) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_serve::{ServeConfig, ServeDaemon};

    #[test]
    fn http_closed_loop_matches_the_in_process_shape() {
        let daemon = ServeDaemon::start(ServeConfig::default()).expect("start daemon");
        let client = ServeClient::new(daemon.addr().to_string());
        let created = client
            .create_tenant("loadtest", "pubchem_like", 30, 7, "small")
            .unwrap();
        assert_eq!(created.status, 201, "{}", created.body);

        let cfg = LoadConfig {
            users: 2,
            ticks: 3,
            tick_ms: 10,
            pool: 8,
            ..LoadConfig::default()
        };
        let report = run_http(&daemon.addr().to_string(), "loadtest", &cfg).unwrap();
        assert_eq!(report.users, 2);
        assert_eq!(report.ticks, 3);
        assert_eq!(report.final_epoch, 3, "one sync batch per tick");
        assert!(report.queries > 0, "users formulated during the run");
        assert!(report.steps_baseline > 0);
        assert!(report.reduction.is_finite());
        assert!(report.read_ns.p50 > 0, "HTTP reads take nonzero time");
        daemon.shutdown();
    }

    #[test]
    fn run_http_fails_cleanly_on_unknown_tenant() {
        let daemon = ServeDaemon::start(ServeConfig::default()).expect("start daemon");
        let err = run_http(&daemon.addr().to_string(), "ghost", &LoadConfig::quick()).unwrap_err();
        assert!(err.contains("404"), "{err}");
        daemon.shutdown();
    }
}
