//! # midas-load
//!
//! The closed-loop load harness: N concurrent simulated users formulate
//! queries against the **live** canned pattern set while a driver applies
//! update batches to the same [`Midas`] instance — the end-to-end loop the
//! paper's claims are about, measured as user-facing SLIs instead of
//! maintenance-side timings.
//!
//! The shape (one driver, many users, shared immutable snapshots):
//!
//! * The driver owns `&mut Midas` and applies one batch per tick (growth
//!   most ticks, deletions and novel-family waves on the daemon's
//!   schedule), then refreshes the query pool from the evolved database —
//!   queries stay *derived from the data*, as §7.1 draws them.
//! * Each user loops: read the latest [`PatternSnapshot`] through the
//!   lock-free [`Published`] handle (timed — the *read latency* SLI),
//!   draw a query from the pool, formulate it with
//!   [`midas_queryform::formulate`] against the snapshot's patterns
//!   (timed — the *formulation latency* SLI) and against a **frozen
//!   baseline** set captured before the run (the no-maintenance
//!   comparison), then re-read the latest snapshot and score how stale
//!   the copy it used had become (*staleness*: batches behind + graphlet
//!   drift).
//! * Every sample feeds [`midas_obs::sli`] (live `/sli`, `midas_sli_*`
//!   Prometheus families) *and* a per-user exact sample log, so the
//!   returned [`LoadReport`] has precise quantiles even with telemetry
//!   off.
//!
//! Users never block on maintenance: they share nothing with the driver
//! but [`Published`] cells (pointer-swap reads) and relaxed atomics.
//!
//! ```
//! use midas_core::{Midas, MidasConfig};
//! use midas_datagen::{DatasetKind, DatasetSpec};
//! use midas_load::{run, LoadConfig};
//!
//! let dataset = DatasetSpec::new(DatasetKind::PubchemLike, 40, 7).generate();
//! let mut midas = Midas::bootstrap(dataset.db, MidasConfig::small_defaults()).unwrap();
//! let report = run(
//!     &mut midas,
//!     DatasetKind::PubchemLike,
//!     &LoadConfig { users: 2, ticks: 2, tick_ms: 5, ..LoadConfig::default() },
//! );
//! assert!(report.queries > 0);
//! assert_eq!(report.ticks, 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod http;

pub use http::run_http;

use midas_core::{Midas, PatternSnapshot, Published};
use midas_datagen::updates::{deletion_percent, growth_percent};
use midas_datagen::{query_set, DatasetKind, MotifKind};
use midas_graph::LabeledGraph;
use midas_obs::sli::{self, QuerySample, TickSummary};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Load-harness parameters. [`LoadConfig::from_env`] reads the
/// `MIDAS_LOAD_*` knobs documented in the README.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadConfig {
    /// Concurrent simulated users.
    pub users: usize,
    /// Driver ticks; each applies one update batch.
    pub ticks: u64,
    /// Driver pause after each batch, giving users time to formulate
    /// against the new snapshot (milliseconds).
    pub tick_ms: u64,
    /// Queries drawn into the pool each tick.
    pub pool: usize,
    /// Query size range, in edges (inclusive), per §7.1's subgraph draws.
    pub query_edges: (usize, usize),
    /// Growth/deletion batch size as a percentage of the database.
    pub batch_percent: f64,
    /// Base RNG seed; user i perturbs it with its index.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            users: 8,
            ticks: 6,
            tick_ms: 50,
            pool: 32,
            query_edges: (3, 8),
            batch_percent: 4.0,
            seed: 42,
        }
    }
}

impl LoadConfig {
    /// A smaller preset for CI smoke runs and quick-mode benches.
    pub fn quick() -> Self {
        LoadConfig {
            users: 4,
            ticks: 3,
            tick_ms: 25,
            pool: 16,
            ..LoadConfig::default()
        }
    }

    /// Applies the `MIDAS_LOAD_USERS` / `MIDAS_LOAD_TICKS` /
    /// `MIDAS_LOAD_TICK_MS` / `MIDAS_LOAD_POOL` / `MIDAS_LOAD_SEED`
    /// environment overrides on top of `self`.
    pub fn from_env(mut self) -> Self {
        fn env_u64(name: &str) -> Option<u64> {
            std::env::var(name).ok().and_then(|s| s.trim().parse().ok())
        }
        if let Some(v) = env_u64("MIDAS_LOAD_USERS") {
            self.users = (v as usize).max(1);
        }
        if let Some(v) = env_u64("MIDAS_LOAD_TICKS") {
            self.ticks = v.max(1);
        }
        if let Some(v) = env_u64("MIDAS_LOAD_TICK_MS") {
            self.tick_ms = v;
        }
        if let Some(v) = env_u64("MIDAS_LOAD_POOL") {
            self.pool = (v as usize).max(1);
        }
        if let Some(v) = env_u64("MIDAS_LOAD_SEED") {
            self.seed = v;
        }
        self
    }
}

/// Exact (non-bucketed) quantile over one SLI dimension of the run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QuantileLine {
    /// Median.
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Maximum.
    pub max: u64,
}

impl QuantileLine {
    pub(crate) fn from_samples(mut v: Vec<u64>) -> QuantileLine {
        if v.is_empty() {
            return QuantileLine::default();
        }
        v.sort_unstable();
        let at = |q: f64| v[((q * (v.len() - 1) as f64).round() as usize).min(v.len() - 1)];
        QuantileLine {
            p50: at(0.50),
            p99: at(0.99),
            max: *v.last().unwrap(),
        }
    }
}

/// What one load run measured, computed from the users' exact per-query
/// sample logs (independent of the telemetry switch).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadReport {
    /// Concurrent users that ran.
    pub users: usize,
    /// Driver ticks (batches applied).
    pub ticks: u64,
    /// Queries formulated across all users.
    pub queries: u64,
    /// Total formulation steps against the live (maintained) set.
    pub steps_live: u64,
    /// Total formulation steps against the frozen baseline set.
    pub steps_baseline: u64,
    /// `1 − steps_live/steps_baseline` (0.0 when the baseline is 0).
    pub reduction: f64,
    /// Snapshot-read latency, nanoseconds.
    pub read_ns: QuantileLine,
    /// Per-query formulation latency against the live set, nanoseconds.
    pub formulate_ns: QuantileLine,
    /// Batches-behind staleness of the snapshots users formulated against.
    pub staleness_batches: QuantileLine,
    /// Mean graphlet drift between used and latest snapshots.
    pub staleness_drift_mean: f64,
    /// Worst graphlet drift observed.
    pub staleness_drift_max: f64,
    /// Pattern-set epoch when the run finished.
    pub final_epoch: u64,
    /// Wall-clock for the whole run, milliseconds.
    pub wall_ms: u64,
}

/// Shared per-tick accumulators (reset by the driver each tick).
#[derive(Default)]
pub(crate) struct TickCounters {
    queries: AtomicU64,
    steps_live: AtomicU64,
    steps_baseline: AtomicU64,
    staleness_batches_max: AtomicU64,
    /// Worst drift this tick, stored as `f64` bits (valid for
    /// `fetch_max` because non-negative IEEE-754 floats order like their
    /// bit patterns).
    drift_max_bits: AtomicU64,
}

impl TickCounters {
    pub(crate) fn observe(&self, s: &QuerySample) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.steps_live.fetch_add(s.steps_live, Ordering::Relaxed);
        self.steps_baseline
            .fetch_add(s.steps_baseline, Ordering::Relaxed);
        self.staleness_batches_max
            .fetch_max(s.staleness_batches, Ordering::Relaxed);
        self.drift_max_bits
            .fetch_max(s.staleness_drift.max(0.0).to_bits(), Ordering::Relaxed);
    }

    pub(crate) fn drain(&self) -> (u64, u64, u64, u64, f64) {
        (
            self.queries.swap(0, Ordering::Relaxed),
            self.steps_live.swap(0, Ordering::Relaxed),
            self.steps_baseline.swap(0, Ordering::Relaxed),
            self.staleness_batches_max.swap(0, Ordering::Relaxed),
            f64::from_bits(self.drift_max_bits.swap(0, Ordering::Relaxed)),
        )
    }
}

/// One user's closed loop: read snapshot → formulate (live + baseline) →
/// score staleness → record. Runs until `stop` flips.
fn user_loop(
    handle: &Published<PatternSnapshot>,
    pool: &Published<Vec<LabeledGraph>>,
    baseline: &[LabeledGraph],
    tickc: &TickCounters,
    stop: &AtomicBool,
    seed: u64,
) -> Vec<QuerySample> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samples = Vec::new();
    while !stop.load(Ordering::Acquire) {
        let queries = pool.read();
        if queries.is_empty() {
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        let query = &queries[rng.random_range(0..queries.len())];

        let read_start = Instant::now();
        let snap = handle.read();
        let read_ns = read_start.elapsed().as_nanos().min(u64::MAX as u128) as u64;

        let form_start = Instant::now();
        let live = midas_queryform::formulate(query, &snap.patterns);
        let formulate_ns = form_start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let base = midas_queryform::formulate(query, baseline);

        // Staleness of the copy we just used, judged against whatever is
        // latest *now* — the user-visible lag of a lock-free read.
        let latest = handle.read();
        let sample = QuerySample {
            read_ns,
            formulate_ns,
            steps_live: live.steps as u64,
            steps_baseline: base.steps as u64,
            staleness_batches: snap.batches_behind(&latest),
            staleness_drift: snap.drift_to(&latest),
        };
        sli::record_query(&sample);
        tickc.observe(&sample);
        samples.push(sample);
    }
    samples
}

/// The driver's batch for `tick`, on the daemon's rotation: novel-family
/// waves every 5th tick (major modifications), deletions on a 5k+3
/// cadence, growth otherwise.
fn tick_batch(
    midas: &Midas,
    kind: DatasetKind,
    cfg: &LoadConfig,
    tick: u64,
) -> midas_graph::BatchUpdate {
    let seed = cfg.seed.wrapping_add(1_000 + tick);
    match tick % 5 {
        0 => midas_datagen::novel_family_batch(
            if tick.is_multiple_of(2) {
                MotifKind::BoronicEster
            } else {
                MotifKind::Phosphate
            },
            (midas.db().len() / 5).max(1),
            seed,
        ),
        3 => deletion_percent(midas.db(), cfg.batch_percent, seed),
        _ => growth_percent(&kind.params(), midas.db(), cfg.batch_percent, seed),
    }
}

/// Runs the closed loop: `cfg.users` simulated users against `midas`'s
/// live pattern snapshot while the driver applies `cfg.ticks` update
/// batches. Returns the exact-sample [`LoadReport`]; live SLIs stream to
/// [`midas_obs::sli`] throughout (when telemetry is enabled).
pub fn run(midas: &mut Midas, kind: DatasetKind, cfg: &LoadConfig) -> LoadReport {
    let started = Instant::now();
    // The no-maintenance comparison: the pattern set as of *now*, frozen.
    let baseline: Vec<LabeledGraph> = midas.patterns();
    let handle = midas.snapshot_handle();
    let pool: Published<Vec<LabeledGraph>> =
        Published::new(query_set(midas.db(), cfg.pool, cfg.query_edges, cfg.seed));
    let stop = AtomicBool::new(false);
    let tickc = TickCounters::default();

    let mut all: Vec<QuerySample> = Vec::new();
    std::thread::scope(|scope| {
        let mut workers = Vec::with_capacity(cfg.users);
        for u in 0..cfg.users {
            let handle = handle.clone();
            let pool = pool.clone();
            let baseline = &baseline;
            let tickc = &tickc;
            let stop = &stop;
            let seed = cfg.seed ^ ((u as u64 + 1) << 32);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("midas-load-user-{u}"))
                    .spawn_scoped(scope, move || {
                        user_loop(&handle, &pool, baseline, tickc, stop, seed)
                    })
                    .expect("spawn load user"),
            );
        }

        for tick in 1..=cfg.ticks {
            let update = tick_batch(midas, kind, cfg, tick);
            let report = midas.apply_batch(update);
            // Fresh pool from the evolved database, so queries keep
            // tracking the data (and Δ⁺ content shows up in them).
            pool.publish(query_set(
                midas.db(),
                cfg.pool,
                cfg.query_edges,
                cfg.seed.wrapping_add(tick),
            ));
            // Let users formulate against the new snapshot before the next
            // batch lands.
            std::thread::sleep(Duration::from_millis(cfg.tick_ms));
            let (queries, steps_live, steps_baseline, stale_max, drift_max) = tickc.drain();
            sli::record_tick(TickSummary {
                tick,
                epoch: midas.pattern_snapshot().epoch,
                queries,
                steps_live,
                steps_baseline,
                reduction: sli::reduction_from_steps(steps_live, steps_baseline),
                staleness_batches_max: stale_max,
                staleness_drift_max: drift_max,
                unix_ms: midas_obs::flight::unix_ms(),
            });
            let _ = report;
        }
        stop.store(true, Ordering::Release);
        for w in workers {
            all.extend(w.join().expect("load user panicked"));
        }
    });

    let steps_live: u64 = all.iter().map(|s| s.steps_live).sum();
    let steps_baseline: u64 = all.iter().map(|s| s.steps_baseline).sum();
    let drift_sum: f64 = all.iter().map(|s| s.staleness_drift).sum();
    LoadReport {
        users: cfg.users,
        ticks: cfg.ticks,
        queries: all.len() as u64,
        steps_live,
        steps_baseline,
        reduction: sli::reduction_from_steps(steps_live, steps_baseline),
        read_ns: QuantileLine::from_samples(all.iter().map(|s| s.read_ns).collect()),
        formulate_ns: QuantileLine::from_samples(all.iter().map(|s| s.formulate_ns).collect()),
        staleness_batches: QuantileLine::from_samples(
            all.iter().map(|s| s.staleness_batches).collect(),
        ),
        staleness_drift_mean: if all.is_empty() {
            0.0
        } else {
            drift_sum / all.len() as f64
        },
        staleness_drift_max: all.iter().map(|s| s.staleness_drift).fold(0.0, f64::max),
        final_epoch: midas.pattern_snapshot().epoch,
        wall_ms: started.elapsed().as_millis().min(u64::MAX as u128) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_core::MidasConfig;
    use midas_datagen::DatasetSpec;

    fn small_midas() -> Midas {
        let dataset = DatasetSpec::new(DatasetKind::PubchemLike, 40, 7).generate();
        Midas::bootstrap(dataset.db, MidasConfig::small_defaults()).expect("bootstrap")
    }

    #[test]
    fn quantile_line_handles_empty_and_sorted() {
        assert_eq!(QuantileLine::from_samples(vec![]), QuantileLine::default());
        let q = QuantileLine::from_samples(vec![5, 1, 9, 3, 7]);
        assert_eq!(q.p50, 5);
        assert_eq!(q.max, 9);
        assert!(q.p99 <= q.max && q.p50 <= q.p99);
    }

    #[test]
    fn config_env_overrides_apply() {
        // Serialized by cargo's per-process test env: set + unset around.
        std::env::set_var("MIDAS_LOAD_USERS", "3");
        std::env::set_var("MIDAS_LOAD_TICKS", "9");
        let cfg = LoadConfig::default().from_env();
        std::env::remove_var("MIDAS_LOAD_USERS");
        std::env::remove_var("MIDAS_LOAD_TICKS");
        assert_eq!(cfg.users, 3);
        assert_eq!(cfg.ticks, 9);
        // Absent vars leave the preset alone.
        let cfg = LoadConfig::quick().from_env();
        assert_eq!(cfg.users, LoadConfig::quick().users);
    }

    #[test]
    fn closed_loop_produces_samples_and_advances_epochs() {
        let mut midas = small_midas();
        let cfg = LoadConfig {
            users: 2,
            ticks: 3,
            tick_ms: 10,
            pool: 8,
            ..LoadConfig::default()
        };
        let report = run(&mut midas, DatasetKind::PubchemLike, &cfg);
        assert_eq!(report.users, 2);
        assert_eq!(report.ticks, 3);
        assert_eq!(report.final_epoch, 3, "one publish per batch");
        assert!(report.queries > 0, "users formulated while batches ran");
        assert!(report.steps_baseline > 0);
        assert!(report.reduction.is_finite());
        assert!(report.read_ns.p50 <= report.read_ns.p99);
        assert!(report.formulate_ns.max >= report.formulate_ns.p50);
        assert!(report.staleness_drift_max >= report.staleness_drift_mean);
    }

    #[test]
    fn report_reduction_guards_zero_baseline() {
        let r = LoadReport::default();
        assert_eq!(r.reduction, 0.0);
        assert!(sli::reduction_from_steps(0, 0).is_finite());
    }
}
