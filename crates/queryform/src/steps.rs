//! The formulation step model (§7.1).
//!
//! Edge-at-a-time: every vertex and every edge is one atomic action.
//! Pattern-at-a-time: a canned pattern embeds with a single click-and-drag;
//! the remaining vertices/edges are added atomically. Following §7.1's
//! automated assumptions, (1) a pattern `p` is usable for query `Q` iff
//! `p ⊆ Q`, and (2) used embeddings do not overlap (vertex-disjoint).
//!
//! Minimizing steps is a set-packing problem, so we use the natural greedy:
//! largest patterns first, packing as many vertex-disjoint embeddings as
//! fit.

use midas_graph::isomorphism::{for_each_embedding, Control};
use midas_graph::{LabeledGraph, VertexId};

/// Result of formulating one query against a pattern set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FormulationResult {
    /// Steps in pattern-at-a-time mode (patterns + residual actions).
    pub steps: usize,
    /// Steps in pure edge-at-a-time mode (`|V| + |E|`).
    pub edge_steps: usize,
    /// Number of pattern placements used.
    pub patterns_used: usize,
    /// Vertices covered by pattern placements.
    pub covered_vertices: usize,
    /// Edges covered by pattern placements.
    pub covered_edges: usize,
}

impl FormulationResult {
    /// Whether at least one canned pattern was usable.
    pub fn used_any_pattern(&self) -> bool {
        self.patterns_used > 0
    }
}

/// Formulates `query` with the given canned patterns.
///
/// Pattern packing is NP-hard, so the "minimum number of steps" is
/// approximated by multi-start greedy: one pass with patterns in
/// descending size, plus one pass per usable pattern promoted to the
/// front (the user may recognize a specialized pattern before a generic
/// big one); the best packing wins.
pub fn formulate(query: &LabeledGraph, patterns: &[LabeledGraph]) -> FormulationResult {
    let usable: Vec<&LabeledGraph> = patterns
        .iter()
        .filter(|p| p.edge_count() > 0 && p.edge_count() <= query.edge_count())
        .collect();
    let mut by_size = usable.clone();
    by_size.sort_by_key(|p| std::cmp::Reverse(p.edge_count()));

    let mut best = pack(query, &by_size);
    for promoted in 0..by_size.len() {
        let mut order = by_size.clone();
        let front = order.remove(promoted);
        order.insert(0, front);
        let attempt = pack(query, &order);
        if attempt.steps < best.steps {
            best = attempt;
        }
    }
    best
}

/// One greedy packing pass over a fixed pattern order.
fn pack(query: &LabeledGraph, order: &[&LabeledGraph]) -> FormulationResult {
    let n = query.vertex_count();
    let edge_steps = n + query.edge_count();
    let mut used_vertex = vec![false; n];
    let mut patterns_used = 0usize;
    let mut covered_edges = 0usize;

    for pattern in order {
        loop {
            // Find one embedding avoiding used vertices.
            let mut found: Option<Vec<VertexId>> = None;
            for_each_embedding(pattern, query, &mut |mapping| {
                if mapping.iter().all(|&tv| !used_vertex[tv as usize]) {
                    found = Some(mapping.to_vec());
                    Control::Stop
                } else {
                    Control::Continue
                }
            });
            let Some(mapping) = found else { break };
            for &tv in &mapping {
                used_vertex[tv as usize] = true;
            }
            patterns_used += 1;
            covered_edges += pattern.edge_count();
        }
    }

    let covered_vertices = used_vertex.iter().filter(|&&u| u).count();
    let residual_vertices = n - covered_vertices;
    let residual_edges = query.edge_count() - covered_edges;
    FormulationResult {
        steps: patterns_used + residual_vertices + residual_edges,
        edge_steps,
        patterns_used,
        covered_vertices,
        covered_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_graph::GraphBuilder;

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    #[test]
    fn no_patterns_falls_back_to_edge_mode() {
        let q = path(&[0, 1, 2, 0]);
        let r = formulate(&q, &[]);
        assert_eq!(r.edge_steps, 4 + 3);
        assert_eq!(r.steps, r.edge_steps);
        assert_eq!(r.patterns_used, 0);
    }

    #[test]
    fn exact_pattern_takes_one_step() {
        let q = path(&[0, 1, 2]);
        let r = formulate(&q, &[path(&[0, 1, 2])]);
        assert_eq!(r.steps, 1);
        assert_eq!(r.patterns_used, 1);
        assert_eq!(r.covered_vertices, 3);
        assert_eq!(r.covered_edges, 2);
    }

    #[test]
    fn pattern_plus_residual() {
        // Query C-O-N-S; pattern C-O-N covers 3 vertices/2 edges; residual:
        // S vertex + N-S edge.
        let q = path(&[0, 1, 2, 3]);
        let r = formulate(&q, &[path(&[0, 1, 2])]);
        assert_eq!(r.steps, 1 + 1 + 1);
        assert!(r.steps < r.edge_steps);
    }

    #[test]
    fn disjoint_double_placement() {
        // Query: two C-O wings around an N hub — pattern C-O used twice
        // would overlap at nothing? Build C-O ... O-C with distinct
        // vertices: C-O-N-O-C uses C-O twice (vertex-disjoint).
        let q = path(&[0, 1, 2, 1, 0]);
        let r = formulate(&q, &[path(&[0, 1])]);
        assert_eq!(r.patterns_used, 2);
        // 2 placements + N vertex + 2 connecting edges.
        assert_eq!(r.steps, 2 + 1 + 2);
    }

    #[test]
    fn larger_patterns_preferred() {
        let q = path(&[0, 1, 2, 3]);
        let small = path(&[0, 1]);
        let large = path(&[0, 1, 2]);
        let r = formulate(&q, &[small, large]);
        // Large first: 1 placement, then C-O cannot re-place (vertices
        // used), residual S + edge.
        assert_eq!(r.patterns_used, 1);
        assert_eq!(r.covered_edges, 2);
        assert_eq!(r.steps, 3);
    }

    #[test]
    fn oversized_patterns_are_ignored() {
        let q = path(&[0, 1]);
        let r = formulate(&q, &[path(&[0, 1, 2, 3])]);
        assert_eq!(r.patterns_used, 0);
        assert_eq!(r.steps, r.edge_steps);
    }

    #[test]
    fn non_embedding_patterns_are_ignored() {
        let q = path(&[0, 1, 0]);
        let r = formulate(&q, &[path(&[3, 3])]);
        assert_eq!(r.patterns_used, 0);
    }

    #[test]
    fn pattern_mode_never_exceeds_edge_mode() {
        // Greedy packing replaces k vertices + (k-1)+ edges by one step, so
        // steps <= edge_steps always.
        let queries = [
            path(&[0, 1, 2, 0, 1]),
            path(&[0, 0, 0, 0]),
            GraphBuilder::new()
                .vertices(&[0, 1, 2, 0])
                .path(&[0, 1, 2, 3])
                .edge(3, 0)
                .build(),
        ];
        let patterns = [path(&[0, 1]), path(&[0, 1, 2]), path(&[0, 0])];
        for q in &queries {
            let r = formulate(q, &patterns);
            assert!(r.steps <= r.edge_steps, "query {q:?}");
        }
    }
}
