//! # midas-queryform
//!
//! A visual-query-formulation simulator standing in for the paper's human
//! user study (§7.2) and its automated performance measures (§7.1).
//!
//! * [`steps`] — the step model: *edge-at-a-time* construction costs one
//!   step per vertex and per edge; *pattern-at-a-time* construction places
//!   a whole canned pattern in one drag-and-drop step, with residual
//!   structure added edge-at-a-time. The automated model follows §7.1's
//!   assumptions: a pattern is usable iff it embeds in the query, and used
//!   embeddings do not overlap.
//! * [`measures`] — missed percentage `MP` and reduction ratio `μ`.
//! * [`study`] — the simulated user study: per-action latencies calibrated
//!   from the paper's own worked example (Example 1.1: 41 steps / 145 s
//!   edge-at-a-time vs 20 steps / 102 s pattern-at-a-time), visual mapping
//!   time (VMT) per pattern selection, and per-user log-normal speed
//!   variation across 25 simulated participants.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod measures;
pub mod steps;
pub mod study;

pub use measures::{missed_percentage, reduction_ratio};
pub use steps::{formulate, FormulationResult};
pub use study::{StudyConfig, StudyResult, UserStudy};
