//! The automated performance measures of §7.1.
//!
//! * **Missed percentage** `MP = |Q_M| / |Q| × 100%` — the share of queries
//!   containing no canned pattern at all.
//! * **Reduction ratio** `μ = (step_X − step_MIDAS) / step_X` — positive
//!   when the pattern set `X` needs more steps than MIDAS's.

use crate::steps::formulate;
use midas_graph::isomorphism::is_subgraph_of;
use midas_graph::LabeledGraph;

/// Missed percentage over a query set (in percent, 0–100).
pub fn missed_percentage(queries: &[LabeledGraph], patterns: &[LabeledGraph]) -> f64 {
    if queries.is_empty() {
        return 0.0;
    }
    let missed = queries
        .iter()
        .filter(|q| !patterns.iter().any(|p| is_subgraph_of(p, q)))
        .count();
    missed as f64 / queries.len() as f64 * 100.0
}

/// Mean reduction ratio `μ` of `reference` (the MIDAS set) against
/// `baseline` (the set `X`), averaged over the query set. Queries where
/// the baseline needs zero steps (impossible for non-empty queries) are
/// skipped.
pub fn reduction_ratio(
    queries: &[LabeledGraph],
    baseline: &[LabeledGraph],
    reference: &[LabeledGraph],
) -> f64 {
    let mut total = 0.0;
    let mut counted = 0usize;
    for q in queries {
        let bx = formulate(q, baseline).steps;
        let bm = formulate(q, reference).steps;
        if bx > 0 {
            total += (bx as f64 - bm as f64) / bx as f64;
            counted += 1;
        }
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// Mean number of formulation steps over a query set.
pub fn mean_steps(queries: &[LabeledGraph], patterns: &[LabeledGraph]) -> f64 {
    if queries.is_empty() {
        return 0.0;
    }
    queries
        .iter()
        .map(|q| formulate(q, patterns).steps as f64)
        .sum::<f64>()
        / queries.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_graph::GraphBuilder;

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    #[test]
    fn missed_percentage_counts_uncovered_queries() {
        let queries = vec![path(&[0, 1, 2]), path(&[3, 3, 3]), path(&[0, 1])];
        let patterns = vec![path(&[0, 1])];
        // Covered: q0 and q2; missed: the S-chain.
        let mp = missed_percentage(&queries, &patterns);
        assert!((mp - 100.0 / 3.0).abs() < 1e-9);
        assert_eq!(missed_percentage(&[], &patterns), 0.0);
        assert_eq!(missed_percentage(&queries, &[]), 100.0);
    }

    #[test]
    fn reduction_ratio_positive_when_reference_is_better() {
        let queries = vec![path(&[0, 1, 2, 3]), path(&[0, 1, 2])];
        let good = vec![path(&[0, 1, 2])];
        let bad: Vec<LabeledGraph> = vec![];
        let mu = reduction_ratio(&queries, &bad, &good);
        assert!(mu > 0.0);
        // Symmetric direction is negative.
        let rev = reduction_ratio(&queries, &good, &bad);
        assert!(rev < 0.0);
        // Equal sets: zero.
        assert_eq!(reduction_ratio(&queries, &good, &good), 0.0);
    }

    #[test]
    fn mean_steps_averages() {
        let queries = vec![path(&[0, 1]), path(&[0, 1, 2])];
        // No patterns: (2+1) and (3+2) steps.
        assert!((mean_steps(&queries, &[]) - 4.0).abs() < 1e-12);
        assert_eq!(mean_steps(&[], &[]), 0.0);
    }
}
