//! The automated performance measures of §7.1.
//!
//! * **Missed percentage** `MP = |Q_M| / |Q| × 100%` — the share of queries
//!   containing no canned pattern at all.
//! * **Reduction ratio** `μ = (step_X − step_MIDAS) / step_X` — positive
//!   when the pattern set `X` needs more steps than MIDAS's.

use crate::steps::formulate;
use midas_graph::isomorphism::is_subgraph_of;
use midas_graph::LabeledGraph;

/// Missed percentage over a query set (in percent, 0–100).
pub fn missed_percentage(queries: &[LabeledGraph], patterns: &[LabeledGraph]) -> f64 {
    if queries.is_empty() {
        return 0.0;
    }
    let missed = queries
        .iter()
        .filter(|q| !patterns.iter().any(|p| is_subgraph_of(p, q)))
        .count();
    missed as f64 / queries.len() as f64 * 100.0
}

/// Mean reduction ratio `μ` of `reference` (the MIDAS set) against
/// `baseline` (the set `X`), averaged over the query set. Queries where
/// the baseline needs zero steps (impossible for non-empty queries) are
/// skipped.
pub fn reduction_ratio(
    queries: &[LabeledGraph],
    baseline: &[LabeledGraph],
    reference: &[LabeledGraph],
) -> f64 {
    let mut total = 0.0;
    let mut counted = 0usize;
    for q in queries {
        let bx = formulate(q, baseline).steps;
        let bm = formulate(q, reference).steps;
        if bx > 0 {
            total += (bx as f64 - bm as f64) / bx as f64;
            counted += 1;
        }
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// Mean number of formulation steps over a query set.
pub fn mean_steps(queries: &[LabeledGraph], patterns: &[LabeledGraph]) -> f64 {
    if queries.is_empty() {
        return 0.0;
    }
    queries
        .iter()
        .map(|q| formulate(q, patterns).steps as f64)
        .sum::<f64>()
        / queries.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_graph::GraphBuilder;

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    #[test]
    fn missed_percentage_counts_uncovered_queries() {
        let queries = vec![path(&[0, 1, 2]), path(&[3, 3, 3]), path(&[0, 1])];
        let patterns = vec![path(&[0, 1])];
        // Covered: q0 and q2; missed: the S-chain.
        let mp = missed_percentage(&queries, &patterns);
        assert!((mp - 100.0 / 3.0).abs() < 1e-9);
        assert_eq!(missed_percentage(&[], &patterns), 0.0);
        assert_eq!(missed_percentage(&queries, &[]), 100.0);
    }

    #[test]
    fn reduction_ratio_positive_when_reference_is_better() {
        let queries = vec![path(&[0, 1, 2, 3]), path(&[0, 1, 2])];
        let good = vec![path(&[0, 1, 2])];
        let bad: Vec<LabeledGraph> = vec![];
        let mu = reduction_ratio(&queries, &bad, &good);
        assert!(mu > 0.0);
        // Symmetric direction is negative.
        let rev = reduction_ratio(&queries, &good, &bad);
        assert!(rev < 0.0);
        // Equal sets: zero.
        assert_eq!(reduction_ratio(&queries, &good, &good), 0.0);
    }

    // --- Edge cases: the NaN/panic-prone shapes -------------------------
    // Every division in this module has a guard (empty query list, empty
    // pattern set, zero-step baselines); these tests pin each one to a
    // finite value so a refactor cannot quietly reintroduce `0/0`.

    #[test]
    fn empty_query_list_yields_finite_zeroes_everywhere() {
        let patterns = vec![path(&[0, 1])];
        assert_eq!(missed_percentage(&[], &patterns), 0.0);
        assert_eq!(reduction_ratio(&[], &patterns, &patterns), 0.0);
        assert_eq!(mean_steps(&[], &patterns), 0.0);
        // And with the pattern set empty too: still finite.
        assert_eq!(reduction_ratio(&[], &[], &[]), 0.0);
    }

    #[test]
    fn empty_pattern_set_misses_everything_but_never_divides_by_zero() {
        let queries = vec![path(&[0, 1, 2]), path(&[3, 3])];
        assert_eq!(missed_percentage(&queries, &[]), 100.0);
        // Baseline == reference == ∅: identical step counts, ratio 0.
        let mu = reduction_ratio(&queries, &[], &[]);
        assert!(mu.is_finite());
        assert_eq!(mu, 0.0);
        // Mean steps falls back to pure edge-at-a-time counts.
        let ms = mean_steps(&queries, &[]);
        assert!(ms.is_finite() && ms > 0.0);
    }

    #[test]
    fn queries_smaller_than_every_pattern_fall_back_cleanly() {
        // Each query has fewer edges than the smallest pattern, so no
        // pattern is ever usable: MP is 100%, both formulations are pure
        // edge-at-a-time, and μ is exactly 0 — no NaN, no panic.
        let queries = vec![path(&[0, 1]), path(&[2, 2])];
        let patterns = vec![path(&[0, 1, 2, 3]), path(&[1, 2, 3, 1, 0])];
        assert_eq!(missed_percentage(&queries, &patterns), 100.0);
        let mu = reduction_ratio(&queries, &patterns, &patterns);
        assert!(mu.is_finite());
        assert_eq!(mu, 0.0);
        let ms = mean_steps(&queries, &patterns);
        assert!((ms - 3.0).abs() < 1e-12, "2 vertices + 1 edge each");
    }

    #[test]
    fn zero_step_queries_are_skipped_not_divided_by() {
        // An empty query graph formulates in 0 steps for any pattern set;
        // reduction_ratio must skip it (bx == 0) instead of computing 0/0,
        // and a query set of only such graphs yields 0.0.
        let empty = GraphBuilder::new().build();
        assert_eq!(formulate(&empty, &[path(&[0, 1])]).steps, 0);
        let queries = vec![empty.clone(), empty];
        let mu = reduction_ratio(&queries, &[path(&[0, 1])], &[]);
        assert!(mu.is_finite());
        assert_eq!(mu, 0.0);
        // Mixed with one real query, only the real one counts.
        let queries = vec![GraphBuilder::new().build(), path(&[0, 1, 2])];
        let mu = reduction_ratio(&queries, &[], &[path(&[0, 1, 2])]);
        // Real query: baseline 5 steps, reference 1 step → (5−1)/5.
        assert!((mu - 0.8).abs() < 1e-12, "mu = {mu}");
    }

    #[test]
    fn single_vertex_queries_cost_one_step_and_stay_finite() {
        let dot = GraphBuilder::new().vertices(&[0]).build();
        let r = formulate(&dot, &[path(&[0, 1])]);
        assert_eq!(r.steps, 1, "one vertex, no edges, no usable pattern");
        let queries = vec![dot];
        assert_eq!(missed_percentage(&queries, &[path(&[0, 1])]), 100.0);
        let mu = reduction_ratio(&queries, &[path(&[0, 1])], &[]);
        assert!(mu.is_finite());
        assert_eq!(mu, 0.0, "identical 1-step formulations");
    }

    #[test]
    fn mean_steps_averages() {
        let queries = vec![path(&[0, 1]), path(&[0, 1, 2])];
        // No patterns: (2+1) and (3+2) steps.
        assert!((mean_steps(&queries, &[]) - 4.0).abs() < 1e-12);
        assert_eq!(mean_steps(&[], &[]), 0.0);
    }
}
