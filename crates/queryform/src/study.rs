//! The simulated user study (§7.2).
//!
//! 25 simulated participants formulate printed queries in a GUI exposing a
//! canned-pattern panel. Latencies are calibrated against the paper's
//! Example 1.1 (boronic acid: 41 steps / 145 s edge-at-a-time ≈ 3.5 s per
//! atomic action; 20 steps / 102 s pattern-at-a-time ≈ 5.1 s per step with
//! drag-and-drop + browsing overhead):
//!
//! * atomic action (add vertex / add edge / edit): 3.5 s;
//! * pattern drag-and-drop: 2.5 s *plus* the visual mapping time;
//! * visual mapping time (VMT): the time to browse and select a pattern,
//!   `vmt = 1.5 · log₂(γ + 1)` seconds — ≈ 7.4 s for γ = 30, matching the
//!   paper's observed [6.4, 9.4] range;
//! * per-user speed: log-normal multiplier (σ = 0.15) around 1.

use crate::steps::formulate;
use midas_graph::LabeledGraph;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;

/// Latency model parameters (seconds).
#[derive(Debug, Clone, Copy)]
pub struct StudyConfig {
    /// Seconds per atomic action (add vertex/edge, edit).
    pub atomic_action_secs: f64,
    /// Seconds per pattern drag-and-drop (excluding browsing).
    pub drag_secs: f64,
    /// VMT scale: seconds per `log₂(γ + 1)`.
    pub vmt_scale: f64,
    /// Number of simulated participants.
    pub users: usize,
    /// Log-normal σ of per-user speed.
    pub user_sigma: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            atomic_action_secs: 3.5,
            drag_secs: 2.5,
            vmt_scale: 1.5,
            users: 25,
            user_sigma: 0.15,
            seed: 0,
        }
    }
}

/// Aggregated study outcome for one approach.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudyResult {
    /// Mean query formulation time in seconds.
    pub qft_secs: f64,
    /// Mean number of formulation steps.
    pub steps: f64,
    /// Mean visual mapping time per pattern use, in seconds.
    pub vmt_secs: f64,
    /// Missed percentage over the study's query set.
    pub missed_pct: f64,
}

/// The simulated user study.
#[derive(Debug, Clone)]
pub struct UserStudy {
    config: StudyConfig,
}

impl UserStudy {
    /// Creates a study with the given latency model.
    pub fn new(config: StudyConfig) -> Self {
        UserStudy { config }
    }

    /// VMT per pattern selection for a panel of `gamma` patterns.
    pub fn vmt_per_selection(&self, gamma: usize) -> f64 {
        self.config.vmt_scale * ((gamma as f64) + 1.0).log2()
    }

    /// Runs the study: every user formulates every query with `patterns`;
    /// returns the aggregate.
    pub fn run(&self, queries: &[LabeledGraph], patterns: &[LabeledGraph]) -> StudyResult {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let vmt = self.vmt_per_selection(patterns.len());
        let mut total_qft = 0.0;
        let mut total_steps = 0.0;
        let mut total_vmt = 0.0;
        let mut vmt_events = 0usize;
        let mut formulations = 0usize;
        // The packing is user-independent; only latency varies per user.
        let packings: Vec<crate::steps::FormulationResult> =
            queries.iter().map(|q| formulate(q, patterns)).collect();
        for _ in 0..self.config.users {
            // Log-normal speed multiplier around 1.
            let z: f64 = standard_normal(&mut rng);
            let speed = (self.config.user_sigma * z).exp();
            for r in &packings {
                let r = *r;
                let residual_actions = r.steps - r.patterns_used;
                let base = residual_actions as f64 * self.config.atomic_action_secs
                    + r.patterns_used as f64 * (self.config.drag_secs + vmt);
                total_qft += base * speed;
                total_steps += r.steps as f64;
                if r.patterns_used > 0 {
                    total_vmt += vmt * speed * r.patterns_used as f64;
                    vmt_events += r.patterns_used;
                }
                formulations += 1;
            }
        }
        let denom = formulations.max(1) as f64;
        StudyResult {
            qft_secs: total_qft / denom,
            steps: total_steps / denom,
            vmt_secs: if vmt_events == 0 {
                0.0
            } else {
                total_vmt / vmt_events as f64
            },
            missed_pct: crate::measures::missed_percentage(queries, patterns),
        }
    }

    /// Runs the study for several named approaches over the same query set.
    pub fn compare(
        &self,
        queries: &[LabeledGraph],
        approaches: &[(&str, Vec<LabeledGraph>)],
    ) -> BTreeMap<String, StudyResult> {
        approaches
            .iter()
            .map(|(name, patterns)| ((*name).to_owned(), self.run(queries, patterns)))
            .collect()
    }
}

/// Box–Muller standard normal.
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_graph::GraphBuilder;

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    #[test]
    fn vmt_matches_paper_range_for_gamma_30() {
        let study = UserStudy::new(StudyConfig::default());
        let vmt = study.vmt_per_selection(30);
        assert!(
            (6.4..=9.4).contains(&vmt),
            "VMT {vmt} should fall in the paper's observed range"
        );
    }

    #[test]
    fn relevant_patterns_speed_up_formulation() {
        let study = UserStudy::new(StudyConfig::default());
        let queries: Vec<LabeledGraph> = (0..5).map(|_| path(&[0, 1, 2, 0, 1, 2])).collect();
        let with = study.run(&queries, &[path(&[0, 1, 2, 0])]);
        let without = study.run(&queries, &[]);
        assert!(with.steps < without.steps);
        assert!(with.qft_secs < without.qft_secs);
        assert_eq!(without.missed_pct, 100.0);
        assert_eq!(with.missed_pct, 0.0);
    }

    #[test]
    fn example_1_1_scale_sanity() {
        // A boronic-acid-sized query (19 vertices, 20 edges): edge-at-a-time
        // should land near the paper's 145 s.
        let labels: Vec<u32> = (0..20).map(|i| (i % 4) as u32).collect();
        let q = {
            let vs: Vec<u32> = (0..20).collect();
            // 20 vertices, 19 path edges + 2 ring closures = 21 edges.
            let mut g = GraphBuilder::new().vertices(&labels).path(&vs).build();
            g.add_edge(0, 10);
            g.add_edge(5, 15);
            g
        };
        let study = UserStudy::new(StudyConfig {
            users: 1,
            user_sigma: 0.0,
            ..StudyConfig::default()
        });
        let r = study.run(std::slice::from_ref(&q), &[]);
        // 20 vertices + 21 edges = 41 steps × 3.5 s = 143.5 s.
        assert_eq!(r.steps, 41.0);
        assert!((r.qft_secs - 143.5).abs() < 1e-9);
    }

    #[test]
    fn compare_returns_all_approaches() {
        let study = UserStudy::new(StudyConfig {
            users: 3,
            ..StudyConfig::default()
        });
        let queries = vec![path(&[0, 1, 2])];
        let out = study.compare(
            &queries,
            &[("MIDAS", vec![path(&[0, 1, 2])]), ("NoMaintain", vec![])],
        );
        assert_eq!(out.len(), 2);
        assert!(out["MIDAS"].qft_secs < out["NoMaintain"].qft_secs);
    }

    #[test]
    fn study_is_deterministic_per_seed() {
        let study = UserStudy::new(StudyConfig::default());
        let queries = vec![path(&[0, 1, 2, 0])];
        let a = study.run(&queries, &[path(&[0, 1])]);
        let b = study.run(&queries, &[path(&[0, 1])]);
        assert_eq!(a, b);
    }
}
