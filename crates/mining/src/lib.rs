//! # midas-mining
//!
//! Frequent-subtree and frequent-**closed**-tree (FCT) mining with
//! incremental maintenance, as required by CATAPULT / CATAPULT++ / MIDAS
//! (§2.3, §3.3, §4.1–4.2 of the paper).
//!
//! * [`canonical`] — the canonical form of labeled free trees and the
//!   BFS *canonical string* with `$` sibling-family separators (Fig. 5(c)),
//!   whose tokens feed the FCT-Index trie.
//! * [`treenat`] — a TreeNat-style enumerate-and-count miner producing the
//!   frequent-tree lattice of a graph database.
//! * [`lattice`] — the [`TreeLattice`]: every tracked tree with its exact
//!   supporting-graph set and a derived *closed* flag. A tree is closed iff
//!   no proper supertree has the same support (§3.3); with exact support
//!   sets this reduces to a supertree check inside equal-support buckets.
//! * [`incremental`] — batch maintenance (the CTMiningAdd / CTMiningDelete
//!   analogues, §4.2): supports are updated only against `Δ⁺`/`Δ⁻`, new
//!   trees are mined only from `Δ⁺`, and the lattice is tracked at the
//!   relaxed threshold `sup_min / 2` (Lemma 4.5) so trees that *become*
//!   frequent after an update are never missed.
//! * [`edges`] — frequent / infrequent edge extraction (the `E_freq` /
//!   `E_inf` sets behind the FCT- and IFE-Index).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod canonical;
pub mod edges;
pub mod incremental;
pub mod lattice;
pub mod treenat;

pub use canonical::{tree_key, TreeKey, SEPARATOR};
pub use edges::{EdgeCatalog, EdgeStats};
pub use lattice::{TreeEntry, TreeLattice};
pub use treenat::{mine_lattice, MiningConfig};
