//! Canonical form and canonical string of labeled free trees (§4.2, Fig. 5c).
//!
//! CATAPULT represents frequent trees by *canonical strings*: the tree is
//! normalized (rooted at its center with children in canonical order) and
//! serialized by a top-down, level-by-level breadth-first scan in which the
//! symbol `$` separates families of siblings. The FCT-Index trie (§5.1) is
//! built over exactly these token sequences, so this module is shared by the
//! miner and the index.

use midas_graph::{LabelId, LabeledGraph, VertexId};

/// The `$` sibling-family separator token.
pub const SEPARATOR: u32 = u32::MAX;

/// Canonical token sequence of a tree — the paper's canonical string.
///
/// Tokens are vertex labels, with [`SEPARATOR`] closing each family of
/// siblings. Equal keys ⇔ isomorphic labeled trees.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TreeKey(pub Box<[u32]>);

impl TreeKey {
    /// The raw token sequence.
    pub fn tokens(&self) -> &[u32] {
        &self.0
    }

    /// Renders the key with an interner, e.g. `"C O $ S $ $ $"`.
    pub fn display(&self, interner: &midas_graph::Interner) -> String {
        self.0
            .iter()
            .map(|&t| {
                if t == SEPARATOR {
                    "$".to_owned()
                } else {
                    interner.name_or_placeholder(t)
                }
            })
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Number of labels (non-separator tokens) = number of tree vertices.
    pub fn vertex_count(&self) -> usize {
        self.0.iter().filter(|&&t| t != SEPARATOR).count()
    }
}

/// Returns whether `g` is a tree: connected with `|E| = |V| − 1` (the empty
/// graph is not a tree; a single vertex is).
pub fn is_tree(g: &LabeledGraph) -> bool {
    g.vertex_count() >= 1 && g.edge_count() == g.vertex_count() - 1 && g.is_connected()
}

/// Finds the 1 or 2 center vertices of a tree by iterative leaf stripping.
fn centers(tree: &LabeledGraph) -> Vec<VertexId> {
    let n = tree.vertex_count();
    if n <= 2 {
        return (0..n as VertexId).collect();
    }
    let mut degree: Vec<usize> = (0..n as VertexId).map(|v| tree.degree(v)).collect();
    let mut removed = vec![false; n];
    let mut remaining = n;
    let mut leaves: Vec<VertexId> = (0..n as VertexId)
        .filter(|&v| degree[v as usize] <= 1)
        .collect();
    while remaining > 2 {
        remaining -= leaves.len();
        let mut next = Vec::new();
        for &leaf in &leaves {
            removed[leaf as usize] = true;
            for &w in tree.neighbors(leaf) {
                if !removed[w as usize] {
                    degree[w as usize] -= 1;
                    if degree[w as usize] == 1 {
                        next.push(w);
                    }
                }
            }
        }
        leaves = next;
    }
    (0..n as VertexId)
        .filter(|&v| !removed[v as usize])
        .collect()
}

/// Recursive subtree code rooted at `v` (coming from `parent`): the label,
/// followed by children codes in sorted order, closed by a sentinel. Shifts
/// labels by 2 so sentinels 0/1 never collide.
fn subtree_code(tree: &LabeledGraph, v: VertexId, parent: Option<VertexId>, out: &mut Vec<u64>) {
    out.push(tree.label(v) as u64 + 2);
    let mut child_codes: Vec<Vec<u64>> = tree
        .neighbors(v)
        .iter()
        .filter(|&&w| Some(w) != parent)
        .map(|&w| {
            let mut code = Vec::new();
            subtree_code(tree, w, Some(v), &mut code);
            code
        })
        .collect();
    child_codes.sort();
    for code in child_codes {
        out.extend_from_slice(&code);
    }
    out.push(1); // end-of-children sentinel
}

/// Orders the children of each vertex canonically and returns, for the tree
/// rooted at `root`, the BFS canonical-string tokens.
fn bfs_string(tree: &LabeledGraph, root: VertexId) -> Vec<u32> {
    // Precompute subtree codes for deterministic child ordering.
    fn ordered_children(
        tree: &LabeledGraph,
        v: VertexId,
        parent: Option<VertexId>,
    ) -> Vec<VertexId> {
        let mut kids: Vec<(Vec<u64>, VertexId)> = tree
            .neighbors(v)
            .iter()
            .filter(|&&w| Some(w) != parent)
            .map(|&w| {
                let mut code = Vec::new();
                subtree_code(tree, w, Some(v), &mut code);
                (code, w)
            })
            .collect();
        kids.sort();
        kids.into_iter().map(|(_, w)| w).collect()
    }

    let mut tokens = vec![tree.label(root), SEPARATOR];
    let mut queue: std::collections::VecDeque<(VertexId, Option<VertexId>)> = [(root, None)].into();
    // The root family was emitted above as a single label; now emit each
    // dequeued vertex's children as one `$`-terminated family.
    let mut order: Vec<(VertexId, Option<VertexId>)> = Vec::new();
    while let Some((v, parent)) = queue.pop_front() {
        order.push((v, parent));
        for w in ordered_children(tree, v, parent) {
            queue.push_back((w, Some(v)));
        }
    }
    for &(v, parent) in &order {
        for w in ordered_children(tree, v, parent) {
            tokens.push(tree.label(w));
        }
        tokens.push(SEPARATOR);
    }
    tokens
}

/// Computes the canonical string key of a labeled free tree.
///
/// # Panics
///
/// Panics if `g` is not a tree.
pub fn tree_key(g: &LabeledGraph) -> TreeKey {
    assert!(is_tree(g), "tree_key requires a tree, got {g:?}");
    let cs = centers(g);
    let best = cs
        .iter()
        .map(|&c| {
            // Order candidate roots by their full rooted code, then take the
            // BFS string of the winner. Comparing BFS strings directly would
            // also work; rooted codes are cheaper to compare.
            let mut code = Vec::new();
            subtree_code(g, c, None, &mut code);
            (code, c)
        })
        .min()
        .expect("a tree has at least one center");
    TreeKey(bfs_string(g, best.1).into_boxed_slice())
}

/// Builds the 2-vertex tree for an edge label — the level-1 mining seed and
/// the trie entry for frequent edges.
pub fn edge_tree(a: LabelId, b: LabelId) -> LabeledGraph {
    let (a, b) = if a <= b { (a, b) } else { (b, a) };
    let mut g = LabeledGraph::new();
    g.add_vertex(a);
    g.add_vertex(b);
    g.add_edge(0, 1);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_graph::GraphBuilder;

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    #[test]
    fn is_tree_checks() {
        assert!(is_tree(&path(&[0, 1, 2])));
        assert!(!is_tree(&LabeledGraph::new()));
        let triangle = GraphBuilder::new()
            .vertices(&[0, 0, 0])
            .edge(0, 1)
            .edge(1, 2)
            .edge(0, 2)
            .build();
        assert!(!is_tree(&triangle));
        let forest = GraphBuilder::new().vertices(&[0, 0]).build();
        assert!(!is_tree(&forest));
        let single = GraphBuilder::new().vertex(0).build();
        assert!(is_tree(&single));
    }

    #[test]
    fn isomorphic_trees_share_keys() {
        let a = path(&[0, 1, 2]);
        let b = GraphBuilder::new()
            .vertices(&[2, 1, 0])
            .edge(0, 1)
            .edge(1, 2)
            .build();
        assert_eq!(tree_key(&a), tree_key(&b));
    }

    #[test]
    fn different_trees_differ() {
        // Claw vs path, same labels.
        let claw = GraphBuilder::new()
            .vertices(&[0, 0, 0, 0])
            .edge(0, 1)
            .edge(0, 2)
            .edge(0, 3)
            .build();
        let p = path(&[0, 0, 0, 0]);
        assert_ne!(tree_key(&claw), tree_key(&p));
        // Same structure, different labels.
        assert_ne!(tree_key(&path(&[0, 1, 0])), tree_key(&path(&[0, 1, 1])));
    }

    #[test]
    fn child_order_does_not_matter() {
        let a = GraphBuilder::new()
            .vertices(&[0, 1, 3])
            .edge(0, 1)
            .edge(0, 2)
            .build();
        let b = GraphBuilder::new()
            .vertices(&[0, 3, 1])
            .edge(0, 1)
            .edge(0, 2)
            .build();
        assert_eq!(tree_key(&a), tree_key(&b));
    }

    #[test]
    fn key_encodes_vertex_count() {
        assert_eq!(tree_key(&path(&[0, 1, 2])).vertex_count(), 3);
        assert_eq!(tree_key(&edge_tree(0, 5)).vertex_count(), 2);
    }

    #[test]
    fn edge_tree_is_normalized() {
        assert_eq!(tree_key(&edge_tree(5, 0)), tree_key(&edge_tree(0, 5)));
    }

    #[test]
    fn bicentral_paths_are_stable() {
        // Even path: two centers; both rootings must resolve to one key.
        let a = path(&[0, 1, 1, 0]);
        let b = GraphBuilder::new()
            .vertices(&[0, 1, 1, 0])
            .edge(3, 2)
            .edge(2, 1)
            .edge(1, 0)
            .build();
        assert_eq!(tree_key(&a), tree_key(&b));
    }

    #[test]
    fn asymmetric_bicentral_path() {
        // C-O-N-S: centers are O and N; the rooted codes differ, and the
        // canonical key must be direction-independent.
        let a = path(&[0, 1, 2, 3]);
        let b = path(&[3, 2, 1, 0]);
        assert_eq!(tree_key(&a), tree_key(&b));
    }

    #[test]
    fn display_uses_dollar_separators() {
        let interner = midas_graph::Interner::with_labels(["C", "O", "S"]);
        // Star: C with children O, S (paper's f2).
        let star = GraphBuilder::new()
            .vertices(&[0, 1, 2])
            .edge(0, 1)
            .edge(0, 2)
            .build();
        let key = tree_key(&star);
        let shown = key.display(&interner);
        assert!(shown.starts_with("C $ O S $"), "got: {shown}");
    }

    #[test]
    fn star_centers() {
        // Star center is the hub regardless of size.
        let star = GraphBuilder::new()
            .vertices(&[7, 0, 0, 0, 0])
            .edge(0, 1)
            .edge(0, 2)
            .edge(0, 3)
            .edge(0, 4)
            .build();
        let key = tree_key(&star);
        assert_eq!(key.tokens()[0], 7, "hub label leads the canonical string");
    }

    #[test]
    fn deep_tree_roundtrip_stability() {
        // A 7-vertex caterpillar relabeled under several permutations.
        let base = GraphBuilder::new()
            .vertices(&[0, 1, 0, 2, 0, 1, 3])
            .path(&[0, 1, 2, 3, 4])
            .edge(1, 5)
            .edge(3, 6)
            .build();
        let perm = GraphBuilder::new()
            .vertices(&[3, 1, 0, 2, 0, 1, 0])
            .path(&[6, 5, 4, 3, 2])
            .edge(5, 1)
            .edge(3, 0)
            .build();
        assert_eq!(tree_key(&base), tree_key(&perm));
    }
}
