//! The frequent-tree lattice: tracked trees, exact supports, closed flags.
//!
//! MIDAS needs, at all times, the set of **frequent closed trees** (FCT) of
//! the evolving database (§3.3). We track every tree whose support clears
//! the *relaxed* threshold `sup_min / 2` (Lemma 4.5) together with its exact
//! supporting-graph set. The closed flag is then *derived*:
//!
//! > a tree `f` is closed iff no proper supertree `f'` has `sup(f') =
//! > sup(f)` (§3.3).
//!
//! Because support is anti-monotone, `f' ⊃ f` with equal support implies the
//! two support **sets** are equal — so closedness only needs a supertree
//! check inside buckets of trees with identical support sets, which is cheap
//! and exactly realizes the closure theory of Bifet & Gavaldà \[11\] (see
//! DESIGN.md §5).

use crate::canonical::TreeKey;
use midas_graph::isomorphism::is_subgraph_of;
use midas_graph::{GraphId, LabeledGraph};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// One tracked tree: structure, exact support, derived closed flag.
#[derive(Debug, Clone)]
pub struct TreeEntry {
    /// The tree itself.
    pub tree: LabeledGraph,
    /// Ids of database graphs containing the tree.
    pub support: BTreeSet<GraphId>,
    /// Whether the tree is closed (no proper supertree with equal support).
    /// Maintained by [`TreeLattice::recompute_closed_flags`].
    pub closed: bool,
}

impl TreeEntry {
    /// Relative support w.r.t. a database of `db_len` graphs.
    pub fn relative_support(&self, db_len: usize) -> f64 {
        if db_len == 0 {
            0.0
        } else {
            self.support.len() as f64 / db_len as f64
        }
    }
}

/// The tracked tree lattice of a database.
#[derive(Debug, Clone, Default)]
pub struct TreeLattice {
    trees: BTreeMap<TreeKey, TreeEntry>,
}

impl TreeLattice {
    /// Creates an empty lattice.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tracked trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether no trees are tracked.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Looks up a tracked tree.
    pub fn get(&self, key: &TreeKey) -> Option<&TreeEntry> {
        self.trees.get(key)
    }

    /// Whether `key` is tracked.
    pub fn contains(&self, key: &TreeKey) -> bool {
        self.trees.contains_key(key)
    }

    /// Inserts or replaces an entry. The closed flag is the caller's claim
    /// until [`Self::recompute_closed_flags`] runs.
    pub fn insert(&mut self, key: TreeKey, entry: TreeEntry) {
        self.trees.insert(key, entry);
    }

    /// Removes an entry.
    pub fn remove(&mut self, key: &TreeKey) -> Option<TreeEntry> {
        self.trees.remove(key)
    }

    /// Iterates all tracked `(key, entry)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&TreeKey, &TreeEntry)> {
        self.trees.iter()
    }

    /// Mutable iteration (used by incremental support maintenance).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&TreeKey, &mut TreeEntry)> {
        self.trees.iter_mut()
    }

    /// Drops every tree whose absolute support falls below
    /// `ceil(threshold * db_len)` and recomputes closed flags.
    pub fn prune_below(&mut self, threshold: f64, db_len: usize) {
        let min_count = (threshold * db_len as f64).ceil().max(1.0) as usize;
        self.trees.retain(|_, e| e.support.len() >= min_count);
        self.recompute_closed_flags();
    }

    /// The frequent trees at `sup_min` (the FS feature set of CATAPULT).
    pub fn frequent(&self, sup_min: f64, db_len: usize) -> Vec<(&TreeKey, &TreeEntry)> {
        self.trees
            .iter()
            .filter(|(_, e)| e.relative_support(db_len) >= sup_min)
            .collect()
    }

    /// The **frequent closed trees** at `sup_min` — the FCT feature set of
    /// CATAPULT++ / MIDAS.
    pub fn frequent_closed(&self, sup_min: f64, db_len: usize) -> Vec<(&TreeKey, &TreeEntry)> {
        self.trees
            .iter()
            .filter(|(_, e)| e.closed && e.relative_support(db_len) >= sup_min)
            .collect()
    }

    /// Recomputes every closed flag from the exact support sets.
    ///
    /// Trees are bucketed by support set; within a bucket, a tree is
    /// non-closed iff some strictly larger tree in the same bucket is a
    /// supertree of it. (Equal support across a proper subtree relation
    /// forces equal support *sets* by anti-monotonicity.)
    pub fn recompute_closed_flags(&mut self) {
        let mut buckets: HashMap<Vec<GraphId>, Vec<TreeKey>> = HashMap::new();
        for (key, entry) in &self.trees {
            let sig: Vec<GraphId> = entry.support.iter().copied().collect();
            buckets.entry(sig).or_default().push(key.clone());
        }
        for keys in buckets.values() {
            if keys.len() == 1 {
                let entry = self.trees.get_mut(&keys[0]).expect("key present");
                entry.closed = true;
                continue;
            }
            // Sort bucket members by size descending; check containment.
            let mut members: Vec<(usize, TreeKey)> = keys
                .iter()
                .map(|k| (self.trees[k].tree.edge_count(), k.clone()))
                .collect();
            members.sort_by_key(|m| std::cmp::Reverse(m.0));
            for i in 0..members.len() {
                let (size_i, ref key_i) = members[i];
                let mut closed = true;
                for (size_j, key_j) in members.iter().take(i) {
                    if *size_j <= size_i {
                        break; // sorted descending: no larger tree remains
                    }
                    let small = &self.trees[key_i].tree;
                    let large = &self.trees[key_j].tree;
                    if is_subgraph_of(small, large) {
                        closed = false;
                        break;
                    }
                }
                self.trees.get_mut(key_i).expect("present").closed = closed;
            }
        }
    }

    /// Removes `ids` from every support set, drops empty-support trees, and
    /// refreshes closed flags. This is the `Δ⁻` half of maintenance.
    pub fn remove_graphs(&mut self, ids: &BTreeSet<GraphId>) {
        for entry in self.trees.values_mut() {
            for id in ids {
                entry.support.remove(id);
            }
        }
        self.trees.retain(|_, e| !e.support.is_empty());
        self.recompute_closed_flags();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::tree_key;
    use midas_graph::GraphBuilder;

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    fn ids(v: &[u64]) -> BTreeSet<GraphId> {
        v.iter().map(|&i| GraphId(i)).collect()
    }

    fn entry(tree: LabeledGraph, support: &[u64]) -> TreeEntry {
        TreeEntry {
            tree,
            support: ids(support),
            closed: false,
        }
    }

    #[test]
    fn closed_flags_within_support_buckets() {
        let mut lat = TreeLattice::new();
        let small = path(&[0, 1]); // C-O
        let big = path(&[0, 1, 2]); // C-O-N, contains C-O
        lat.insert(tree_key(&small), entry(small.clone(), &[1, 2, 3]));
        lat.insert(tree_key(&big), entry(big.clone(), &[1, 2, 3]));
        lat.recompute_closed_flags();
        assert!(
            !lat.get(&tree_key(&small)).unwrap().closed,
            "subsumed by big"
        );
        assert!(lat.get(&tree_key(&big)).unwrap().closed);
    }

    #[test]
    fn different_supports_are_both_closed() {
        let mut lat = TreeLattice::new();
        let small = path(&[0, 1]);
        let big = path(&[0, 1, 2]);
        lat.insert(tree_key(&small), entry(small.clone(), &[1, 2, 3, 4]));
        lat.insert(tree_key(&big), entry(big.clone(), &[1, 2, 3]));
        lat.recompute_closed_flags();
        assert!(lat.get(&tree_key(&small)).unwrap().closed);
        assert!(lat.get(&tree_key(&big)).unwrap().closed);
    }

    #[test]
    fn equal_support_without_containment_stays_closed() {
        let mut lat = TreeLattice::new();
        let a = path(&[0, 1]); // C-O
        let b = path(&[0, 2]); // C-N — same size, not comparable
        lat.insert(tree_key(&a), entry(a.clone(), &[1, 2]));
        lat.insert(tree_key(&b), entry(b.clone(), &[1, 2]));
        lat.recompute_closed_flags();
        assert!(lat.get(&tree_key(&a)).unwrap().closed);
        assert!(lat.get(&tree_key(&b)).unwrap().closed);
    }

    #[test]
    fn frequent_and_frequent_closed_filters() {
        let mut lat = TreeLattice::new();
        let a = path(&[0, 1]);
        let b = path(&[0, 1, 2]);
        let c = path(&[3, 3]);
        lat.insert(tree_key(&a), entry(a.clone(), &[1, 2, 3]));
        lat.insert(tree_key(&b), entry(b.clone(), &[1, 2, 3]));
        lat.insert(tree_key(&c), entry(c.clone(), &[4]));
        lat.recompute_closed_flags();
        // DB of 6 graphs, sup_min = 0.5 -> need support >= 3.
        let freq = lat.frequent(0.5, 6);
        assert_eq!(freq.len(), 2);
        let fct = lat.frequent_closed(0.5, 6);
        assert_eq!(fct.len(), 1);
        assert_eq!(fct[0].1.tree.edge_count(), 2);
    }

    #[test]
    fn remove_graphs_updates_supports_and_flags() {
        let mut lat = TreeLattice::new();
        let small = path(&[0, 1]);
        let big = path(&[0, 1, 2]);
        lat.insert(tree_key(&small), entry(small.clone(), &[1, 2, 3, 4]));
        lat.insert(tree_key(&big), entry(big.clone(), &[1, 2, 3]));
        lat.recompute_closed_flags();
        assert!(lat.get(&tree_key(&small)).unwrap().closed);
        // Deleting graph 4 makes supports equal -> small becomes non-closed.
        lat.remove_graphs(&ids(&[4]));
        assert!(!lat.get(&tree_key(&small)).unwrap().closed);
        // Deleting everything empties the lattice.
        lat.remove_graphs(&ids(&[1, 2, 3]));
        assert!(lat.is_empty());
    }

    #[test]
    fn prune_below_threshold() {
        let mut lat = TreeLattice::new();
        let a = path(&[0, 1]);
        let b = path(&[0, 2]);
        lat.insert(tree_key(&a), entry(a.clone(), &[1, 2, 3]));
        lat.insert(tree_key(&b), entry(b.clone(), &[1]));
        lat.prune_below(0.25, 8); // need >= 2
        assert_eq!(lat.len(), 1);
        assert!(lat.contains(&tree_key(&a)));
    }

    #[test]
    fn relative_support() {
        let e = entry(path(&[0, 1]), &[1, 2]);
        assert!((e.relative_support(4) - 0.5).abs() < 1e-12);
        assert_eq!(e.relative_support(0), 0.0);
    }
}
