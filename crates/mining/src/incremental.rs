//! Incremental FCT maintenance (§4.2) — the CTMiningAdd / CTMiningDelete
//! analogues over the exact-support [`TreeLattice`].
//!
//! [`FctState`] owns everything MIDAS tracks about frequent structures:
//! the tree lattice at the **relaxed** threshold `sup_min / 2` (Lemma 4.5)
//! and the per-edge-label catalog. A batch update is processed as:
//!
//! 1. `Δ⁻`: remove deleted ids from every support set (Prop. 4.1 — a CT's
//!    identity does not change, only counts) and from the edge catalog.
//! 2. `Δ⁺`: extend tracked supports by testing only the inserted graphs;
//!    mine the inserted graphs alone at the relaxed threshold (the
//!    `F_{Δ⁺}` of §4.2) and, for trees newly seen, complete their support
//!    against the pre-existing graphs (Corollary 4.3's case 2/3).
//! 3. Prune below the relaxed threshold and re-derive closed flags.
//!
//! If a deletion batch removes more than half the database, the relaxed
//! threshold can no longer guarantee completeness (the premise behind
//! Lemma 4.5), so the state falls back to mining from scratch.

use crate::canonical::TreeKey;
use crate::edges::EdgeCatalog;
use crate::lattice::{TreeEntry, TreeLattice};
use crate::treenat::{mine_lattice, MiningConfig};
use midas_graph::isomorphism::is_subgraph_of;
use midas_graph::{GraphDb, GraphId, LabeledGraph};
use std::collections::BTreeSet;

/// Frequent-structure state: tree lattice + edge catalog, kept in sync with
/// the database by [`FctState::apply_batch`].
#[derive(Debug, Clone)]
pub struct FctState {
    /// The tracked tree lattice (relaxed threshold `sup_min / 2`).
    pub lattice: TreeLattice,
    /// Per-edge-label supports and occurrence counts.
    pub edges: EdgeCatalog,
    config: MiningConfig,
}

impl FctState {
    /// The user-level mining configuration (`sup_min`, `max_edges`).
    pub fn config(&self) -> MiningConfig {
        self.config
    }

    /// The relaxed tracking threshold `sup_min / 2`.
    pub fn relaxed_threshold(&self) -> f64 {
        self.config.sup_min / 2.0
    }

    /// Builds the state from scratch for `db`.
    pub fn build(db: &GraphDb, config: MiningConfig) -> Self {
        let graphs: Vec<(GraphId, &LabeledGraph)> =
            db.iter().map(|(id, g)| (id, g.as_ref())).collect();
        let relaxed = MiningConfig {
            sup_min: config.sup_min / 2.0,
            ..config
        };
        FctState {
            lattice: mine_lattice(&graphs, &relaxed),
            edges: EdgeCatalog::build(graphs.iter().copied()),
            config,
        }
    }

    /// The current FCT set at the user threshold: `(key, entry)` for every
    /// frequent *closed* tree.
    pub fn fct(&self, db_len: usize) -> Vec<(&TreeKey, &TreeEntry)> {
        self.lattice.frequent_closed(self.config.sup_min, db_len)
    }

    /// The frequent-subtree set at the user threshold (CATAPULT's FS
    /// features).
    pub fn frequent_trees(&self, db_len: usize) -> Vec<(&TreeKey, &TreeEntry)> {
        self.lattice.frequent(self.config.sup_min, db_len)
    }

    /// Applies a batch update.
    ///
    /// * `db_after` — the database **after** the batch was applied.
    /// * `inserted` — ids assigned to `Δ⁺` (must resolve in `db_after`).
    /// * `deleted` — the `Δ⁻` graphs, with their former ids.
    pub fn apply_batch(
        &mut self,
        db_after: &GraphDb,
        inserted: &[GraphId],
        deleted: &[(GraphId, &LabeledGraph)],
    ) {
        let old_len = db_after.len() + deleted.len() - inserted.len();
        if !deleted.is_empty() && deleted.len() * 2 > old_len {
            // Lemma 4.5's premise is void: rebuild.
            midas_obs::obs_debug!(
                "mining::incremental",
                "deletion batch ({} of {old_len}) voids the incremental premise: full FCT rebuild",
                deleted.len()
            );
            midas_obs::counter_add!("fct.rebuilds", 1);
            *self = FctState::build(db_after, self.config);
            return;
        }

        // Step 1: deletions (CTMiningDelete analogue).
        for &(id, g) in deleted {
            self.edges.remove_graph(id, g);
        }
        let deleted_ids: BTreeSet<GraphId> = deleted.iter().map(|&(id, _)| id).collect();
        if !deleted_ids.is_empty() {
            self.lattice.remove_graphs(&deleted_ids);
        }

        // Step 2: insertions (CTMiningAdd analogue).
        let inserted_graphs: Vec<(GraphId, &LabeledGraph)> = inserted
            .iter()
            .map(|&id| {
                (
                    id,
                    db_after
                        .get(id)
                        .expect("inserted id must resolve in db_after")
                        .as_ref(),
                )
            })
            .collect();
        for &(id, g) in &inserted_graphs {
            self.edges.add_graph(id, g);
        }
        if !inserted_graphs.is_empty() {
            // 2a: extend supports of already-tracked trees against Δ⁺ only.
            for (_, entry) in self.lattice.iter_mut() {
                for &(id, g) in &inserted_graphs {
                    if is_subgraph_of(&entry.tree, g) {
                        entry.support.insert(id);
                    }
                }
            }
            // 2b: mine F_{Δ⁺} at the relaxed threshold and merge new trees,
            // completing their supports over the pre-existing graphs.
            let relaxed = MiningConfig {
                sup_min: self.relaxed_threshold(),
                ..self.config
            };
            let delta_lattice = mine_lattice(&inserted_graphs, &relaxed);
            let inserted_set: BTreeSet<GraphId> = inserted.iter().copied().collect();
            for (key, delta_entry) in delta_lattice.iter() {
                if self.lattice.contains(key) {
                    continue; // support already extended in 2a
                }
                let mut support = delta_entry.support.clone();
                for (id, g) in db_after.iter() {
                    if !inserted_set.contains(&id) && is_subgraph_of(&delta_entry.tree, g) {
                        support.insert(id);
                    }
                }
                self.lattice.insert(
                    key.clone(),
                    TreeEntry {
                        tree: delta_entry.tree.clone(),
                        support,
                        closed: false,
                    },
                );
            }
        }

        // Step 3: prune to the relaxed threshold and re-derive closedness.
        self.lattice
            .prune_below(self.relaxed_threshold(), db_after.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::tree_key;
    use midas_graph::{BatchUpdate, GraphBuilder};

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    fn config() -> MiningConfig {
        MiningConfig {
            sup_min: 0.5,
            max_edges: 3,
        }
    }

    /// Asserts that `state` equals a from-scratch build on `db`, up to
    /// support sets and closed flags.
    fn assert_matches_scratch(state: &FctState, db: &GraphDb) {
        let scratch = FctState::build(db, state.config());
        let got: Vec<_> = state
            .lattice
            .iter()
            .map(|(k, e)| (k.clone(), e.support.clone(), e.closed))
            .collect();
        let want: Vec<_> = scratch
            .lattice
            .iter()
            .map(|(k, e)| (k.clone(), e.support.clone(), e.closed))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn insertions_match_scratch_mining() {
        let mut db = GraphDb::from_graphs([path(&[0, 1, 2]), path(&[0, 1]), path(&[0, 1, 2, 3])]);
        let mut state = FctState::build(&db, config());
        let (inserted, _) = db.apply(BatchUpdate::insert_only(vec![
            path(&[0, 1, 2]),
            path(&[2, 3]),
        ]));
        state.apply_batch(&db, &inserted, &[]);
        assert_matches_scratch(&state, &db);
    }

    #[test]
    fn deletions_match_scratch_mining() {
        let mut db = GraphDb::from_graphs([
            path(&[0, 1, 2]),
            path(&[0, 1]),
            path(&[0, 1, 2, 3]),
            path(&[0, 1, 2]),
        ]);
        let mut state = FctState::build(&db, config());
        let victim = db.ids().next().unwrap();
        let victim_graph = db.get(victim).unwrap().clone();
        db.remove(victim);
        state.apply_batch(&db, &[], &[(victim, victim_graph.as_ref())]);
        assert_matches_scratch(&state, &db);
    }

    #[test]
    fn mixed_batch_matches_scratch() {
        let mut db = GraphDb::from_graphs([
            path(&[0, 1, 2]),
            path(&[0, 1]),
            path(&[0, 1, 2, 3]),
            path(&[3, 3]),
        ]);
        let mut state = FctState::build(&db, config());
        let victim = db.ids().nth(1).unwrap();
        let victim_graph = db.get(victim).unwrap().clone();
        let update = BatchUpdate {
            insert: vec![path(&[0, 1, 0]), path(&[3, 3, 3])],
            delete: vec![victim],
        };
        let (inserted, _) = db.apply(update);
        state.apply_batch(&db, &inserted, &[(victim, victim_graph.as_ref())]);
        assert_matches_scratch(&state, &db);
    }

    #[test]
    fn new_tree_from_delta_gets_full_support() {
        // S-S is below even the relaxed threshold initially (1 of 8, with
        // ceil(0.25 * 8) = 2 required), then a batch adds two more copies:
        // it must surface with support counted over the *whole* database.
        let mut db = GraphDb::from_graphs([
            path(&[0, 1]),
            path(&[0, 1]),
            path(&[0, 1]),
            path(&[0, 1]),
            path(&[0, 1]),
            path(&[0, 1]),
            path(&[0, 1]),
            path(&[3, 3]),
        ]);
        let mut state = FctState::build(&db, config());
        let ss = tree_key(&path(&[3, 3]));
        assert!(
            state.lattice.get(&ss).is_none(),
            "S-S below relaxed threshold initially"
        );
        let (inserted, _) = db.apply(BatchUpdate::insert_only(vec![
            path(&[3, 3]),
            path(&[3, 3, 3]),
        ]));
        state.apply_batch(&db, &inserted, &[]);
        let entry = state.lattice.get(&ss).expect("S-S now tracked");
        assert_eq!(entry.support.len(), 3, "old S-S graph must be counted");
        assert_matches_scratch(&state, &db);
    }

    #[test]
    fn lemma_3_4_closed_stays_closed() {
        // A tree closed in D stays closed in D ⊕ ΔD when ΔD does not add a
        // same-support supertree.
        let mut db = GraphDb::from_graphs([path(&[0, 1, 2]), path(&[0, 1, 2])]);
        let mut state = FctState::build(&db, config());
        let con = tree_key(&path(&[0, 1, 2]));
        assert!(state.lattice.get(&con).unwrap().closed);
        let (inserted, _) = db.apply(BatchUpdate::insert_only(vec![path(&[0, 1])]));
        state.apply_batch(&db, &inserted, &[]);
        assert!(state.lattice.get(&con).unwrap().closed);
        // And C-O became closed too: its support now differs from C-O-N's.
        let co = tree_key(&path(&[0, 1]));
        assert!(state.lattice.get(&co).unwrap().closed);
    }

    #[test]
    fn huge_deletion_falls_back_to_rebuild() {
        let mut db =
            GraphDb::from_graphs([path(&[0, 1]), path(&[0, 1]), path(&[2, 3]), path(&[2, 3])]);
        let mut state = FctState::build(&db, config());
        let victims: Vec<_> = db.ids().take(3).collect();
        let graphs: Vec<_> = victims
            .iter()
            .map(|&id| (id, db.get(id).unwrap().clone()))
            .collect();
        for &id in &victims {
            db.remove(id);
        }
        let deleted: Vec<(GraphId, &LabeledGraph)> =
            graphs.iter().map(|(id, g)| (*id, g.as_ref())).collect();
        state.apply_batch(&db, &[], &deleted);
        assert_matches_scratch(&state, &db);
    }

    #[test]
    fn fct_filter_uses_user_threshold() {
        let db = GraphDb::from_graphs([path(&[0, 1]), path(&[0, 1]), path(&[0, 1]), path(&[2, 3])]);
        let state = FctState::build(&db, config());
        // C-O: support 3/4 >= 0.5 -> FCT. N-S: 1/4 >= 0.25 (tracked) but
        // below 0.5 (not FCT).
        let fct = state.fct(db.len());
        assert_eq!(fct.len(), 1);
        assert!(state.lattice.contains(&tree_key(&path(&[2, 3]))));
    }

    #[test]
    fn repeated_batches_stay_consistent() {
        let mut db = GraphDb::from_graphs([path(&[0, 1, 2]), path(&[0, 1])]);
        let mut state = FctState::build(&db, config());
        for round in 0..4u32 {
            let newcomer = path(&[round % 3, (round + 1) % 3]);
            let victim = db.ids().next().unwrap();
            let victim_graph = db.get(victim).unwrap().clone();
            let (inserted, _) = db.apply(BatchUpdate {
                insert: vec![newcomer, path(&[0, 1, 2])],
                delete: vec![victim],
            });
            state.apply_batch(&db, &inserted, &[(victim, victim_graph.as_ref())]);
            assert_matches_scratch(&state, &db);
        }
    }
}
