//! TreeNat-style frequent-tree mining (§4.2, Balcázar et al. \[9\]).
//!
//! Enumerates labeled free trees level-wise: level-1 candidates are the
//! frequent edge labels, and a level-`k` tree is extended by attaching one
//! new labeled vertex to each of its vertices. Duplicate extensions are
//! collapsed through the canonical [`TreeKey`]; supports are counted by
//! subtree-into-graph isomorphism, restricted to the parent's supporting
//! graphs (anti-monotonicity). The result is a [`TreeLattice`] whose closed
//! flags are derived from the exact support sets.

use crate::canonical::{edge_tree, tree_key, TreeKey};
use crate::edges::{min_count, EdgeCatalog};
use crate::lattice::{TreeEntry, TreeLattice};
use midas_graph::isomorphism::is_subgraph_of;
use midas_graph::{EdgeLabel, GraphId, LabeledGraph, VertexId};
use std::collections::{BTreeMap, BTreeSet};

/// Mining parameters.
#[derive(Debug, Clone, Copy)]
pub struct MiningConfig {
    /// Minimum relative support `sup_min` (§3.3). The paper's default
    /// setting is 0.5 (§7.1).
    pub sup_min: f64,
    /// Maximum tree size in edges. CATAPULT's feature trees are small; the
    /// paper notes FCT subgraph-isomorphism checks stay cheap "due to small
    /// size of FCTs" (§5.1). Default 4.
    pub max_edges: usize,
}

impl Default for MiningConfig {
    fn default() -> Self {
        MiningConfig {
            sup_min: 0.5,
            max_edges: 4,
        }
    }
}

/// Mines the frequent-tree lattice of `graphs` at `config.sup_min`.
///
/// `graphs` is any consistent snapshot (the full database, or just `Δ⁺`
/// during maintenance). Closed flags are recomputed before returning.
pub fn mine_lattice(graphs: &[(GraphId, &LabeledGraph)], config: &MiningConfig) -> TreeLattice {
    let mut lattice = TreeLattice::new();
    let n = graphs.len();
    if n == 0 || config.max_edges == 0 {
        return lattice;
    }
    let need = min_count(config.sup_min, n);
    let catalog = EdgeCatalog::build(graphs.iter().map(|&(id, g)| (id, g)));

    // Level 1: frequent edge labels as 2-vertex trees.
    let frequent_edges: Vec<(EdgeLabel, BTreeSet<GraphId>)> = catalog
        .labels()
        .filter(|(_, s)| s.support.len() >= need)
        .map(|(l, s)| (l, s.support.clone()))
        .collect();
    let mut frontier: Vec<(TreeKey, LabeledGraph, BTreeSet<GraphId>)> = frequent_edges
        .iter()
        .map(|&(label, ref support)| {
            let t = edge_tree(label.0, label.1);
            (tree_key(&t), t, support.clone())
        })
        .collect();
    for (key, tree, support) in &frontier {
        lattice.insert(
            key.clone(),
            TreeEntry {
                tree: tree.clone(),
                support: support.clone(),
                closed: false,
            },
        );
    }

    // Fast lookup of graphs by id for support counting.
    let by_id: BTreeMap<GraphId, &LabeledGraph> = graphs.iter().map(|&(id, g)| (id, g)).collect();
    // Extension labels allowed per anchor label, derived from frequent edges
    // (a tree extension's new edge must itself be frequent).
    let mut extension_labels: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for &(label, _) in &frequent_edges {
        extension_labels.entry(label.0).or_default().push(label.1);
        if label.0 != label.1 {
            extension_labels.entry(label.1).or_default().push(label.0);
        }
    }

    for _level in 2..=config.max_edges {
        // Generate deduplicated candidates with one parent support each.
        let mut candidates: BTreeMap<TreeKey, (LabeledGraph, BTreeSet<GraphId>)> = BTreeMap::new();
        for (_, tree, support) in &frontier {
            for v in 0..tree.vertex_count() as VertexId {
                let Some(new_labels) = extension_labels.get(&tree.label(v)) else {
                    continue;
                };
                for &nl in new_labels {
                    let mut extended = tree.clone();
                    let nv = extended.add_vertex(nl);
                    extended.add_edge(v, nv);
                    let key = tree_key(&extended);
                    candidates
                        .entry(key)
                        .and_modify(|(_, sup)| {
                            // Intersect parent supports: the candidate's
                            // support is contained in every parent's.
                            *sup = sup.intersection(support).copied().collect();
                        })
                        .or_insert_with(|| (extended, support.clone()));
                }
            }
        }
        // Count exact supports and keep the frequent ones.
        let mut next: Vec<(TreeKey, LabeledGraph, BTreeSet<GraphId>)> = Vec::new();
        for (key, (tree, parent_support)) in candidates {
            if parent_support.len() < need {
                continue;
            }
            let support: BTreeSet<GraphId> = parent_support
                .iter()
                .copied()
                .filter(|id| is_subgraph_of(&tree, by_id[id]))
                .collect();
            if support.len() >= need {
                lattice.insert(
                    key.clone(),
                    TreeEntry {
                        tree: tree.clone(),
                        support: support.clone(),
                        closed: false,
                    },
                );
                next.push((key, tree, support));
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }

    lattice.recompute_closed_flags();
    lattice
}

/// Reference miner for testing: enumerates *all* trees up to `max_edges` by
/// brute-force expansion from every graph's spanning substructures.
///
/// Exponential and tiny-input-only; used to validate [`mine_lattice`].
pub fn mine_lattice_brute_force(
    graphs: &[(GraphId, &LabeledGraph)],
    config: &MiningConfig,
) -> TreeLattice {
    let n = graphs.len();
    let mut lattice = TreeLattice::new();
    if n == 0 {
        return lattice;
    }
    let need = min_count(config.sup_min, n);
    // Enumerate all connected subtrees of every graph (by edge-set growth).
    let mut seen: BTreeMap<TreeKey, (LabeledGraph, BTreeSet<GraphId>)> = BTreeMap::new();
    for &(id, g) in graphs {
        let mut subtrees: BTreeSet<TreeKey> = BTreeSet::new();
        // BFS over connected edge subsets that stay acyclic.
        let mut queue: Vec<Vec<(VertexId, VertexId)>> =
            g.edges().iter().map(|&e| vec![e]).collect();
        while let Some(edge_set) = queue.pop() {
            let sub = g.edge_subgraph(&edge_set);
            if !crate::canonical::is_tree(&sub) {
                continue;
            }
            let key = tree_key(&sub);
            let new = subtrees.insert(key.clone());
            if new {
                seen.entry(key)
                    .and_modify(|(_, sup)| {
                        sup.insert(id);
                    })
                    .or_insert_with(|| (sub.clone(), [id].into()));
            }
            if edge_set.len() < config.max_edges {
                for &e in g.edges() {
                    if !edge_set.contains(&e) {
                        let mut bigger = edge_set.clone();
                        bigger.push(e);
                        bigger.sort_unstable();
                        bigger.dedup();
                        queue.push(bigger);
                    }
                }
            }
        }
    }
    for (key, (tree, support)) in seen {
        if support.len() >= need {
            lattice.insert(
                key,
                TreeEntry {
                    tree,
                    support,
                    closed: false,
                },
            );
        }
    }
    lattice.recompute_closed_flags();
    lattice
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_graph::GraphBuilder;

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    fn gid(i: u64) -> GraphId {
        GraphId(i)
    }

    #[test]
    fn mines_frequent_edges_at_level_one() {
        let g1 = path(&[0, 1]);
        let g2 = path(&[0, 1, 2]);
        let g3 = path(&[3, 3]);
        let graphs = vec![(gid(1), &g1), (gid(2), &g2), (gid(3), &g3)];
        let lat = mine_lattice(
            &graphs,
            &MiningConfig {
                sup_min: 0.5,
                max_edges: 1,
            },
        );
        // Only C-O appears in >= 2 of 3 graphs.
        assert_eq!(lat.len(), 1);
        let (_, entry) = lat.iter().next().unwrap();
        assert_eq!(entry.tree.edge_count(), 1);
        assert_eq!(entry.support.len(), 2);
    }

    #[test]
    fn extends_to_larger_trees() {
        let g1 = path(&[0, 1, 2]);
        let g2 = path(&[0, 1, 2, 3]);
        let graphs = vec![(gid(1), &g1), (gid(2), &g2)];
        let lat = mine_lattice(
            &graphs,
            &MiningConfig {
                sup_min: 1.0,
                max_edges: 3,
            },
        );
        // Frequent in both: C-O, O-N, C-O-N. (N-S only in g2.)
        let sizes: Vec<usize> = lat.iter().map(|(_, e)| e.tree.edge_count()).collect();
        assert!(sizes.contains(&2), "C-O-N should be mined: {sizes:?}");
        let con = path(&[0, 1, 2]);
        let entry = lat.get(&tree_key(&con)).expect("C-O-N tracked");
        assert_eq!(entry.support.len(), 2);
        assert!(entry.closed, "no larger tree shares its support");
    }

    #[test]
    fn closedness_of_subsumed_trees() {
        // Every graph containing C-O also contains C-O-N => C-O not closed.
        let g1 = path(&[0, 1, 2]);
        let g2 = path(&[2, 1, 0]);
        let graphs = vec![(gid(1), &g1), (gid(2), &g2)];
        let lat = mine_lattice(
            &graphs,
            &MiningConfig {
                sup_min: 1.0,
                max_edges: 2,
            },
        );
        let co = lat.get(&tree_key(&path(&[0, 1]))).expect("tracked");
        assert!(!co.closed);
        let con = lat.get(&tree_key(&path(&[0, 1, 2]))).expect("tracked");
        assert!(con.closed);
    }

    #[test]
    fn paper_example_3_3_style_closures() {
        // Mirror of Example 3.3: with sup_min = 1/3, an edge tree that
        // always occurs inside a larger frequent tree is not closed.
        let g: Vec<LabeledGraph> = vec![
            path(&[0, 1, 3]), // C-O-S
            path(&[0, 1, 3]),
            path(&[0, 1, 3]),
            path(&[0, 2]), // C-N
        ];
        let graphs: Vec<(GraphId, &LabeledGraph)> = g
            .iter()
            .enumerate()
            .map(|(i, g)| (gid(i as u64), g))
            .collect();
        let lat = mine_lattice(
            &graphs,
            &MiningConfig {
                sup_min: 0.5,
                max_edges: 3,
            },
        );
        // O-S and C-O occur exactly in graphs 0..3, as does C-O-S.
        let cos = lat.get(&tree_key(&path(&[0, 1, 3]))).expect("mined");
        assert!(cos.closed);
        assert!(!lat.get(&tree_key(&path(&[0, 1]))).unwrap().closed);
        assert!(!lat.get(&tree_key(&path(&[1, 3]))).unwrap().closed);
    }

    #[test]
    fn matches_brute_force_reference() {
        let g1 = GraphBuilder::new()
            .vertices(&[0, 1, 0, 2])
            .path(&[0, 1, 2])
            .edge(1, 3)
            .build();
        let g2 = path(&[0, 1, 0]);
        let g3 = GraphBuilder::new()
            .vertices(&[0, 1, 2])
            .edge(0, 1)
            .edge(1, 2)
            .edge(0, 2)
            .build(); // triangle: subtrees only
        let graphs = vec![(gid(1), &g1), (gid(2), &g2), (gid(3), &g3)];
        for sup_min in [0.34, 0.5, 1.0] {
            let cfg = MiningConfig {
                sup_min,
                max_edges: 3,
            };
            let fast = mine_lattice(&graphs, &cfg);
            let slow = mine_lattice_brute_force(&graphs, &cfg);
            let fast_keys: Vec<_> = fast
                .iter()
                .map(|(k, e)| (k.clone(), e.support.clone(), e.closed))
                .collect();
            let slow_keys: Vec<_> = slow
                .iter()
                .map(|(k, e)| (k.clone(), e.support.clone(), e.closed))
                .collect();
            assert_eq!(fast_keys, slow_keys, "sup_min = {sup_min}");
        }
    }

    #[test]
    fn empty_inputs() {
        let lat = mine_lattice(&[], &MiningConfig::default());
        assert!(lat.is_empty());
        let g = path(&[0, 1]);
        let lat2 = mine_lattice(
            &[(gid(1), &g)],
            &MiningConfig {
                sup_min: 0.5,
                max_edges: 0,
            },
        );
        assert!(lat2.is_empty());
    }

    #[test]
    fn max_edges_caps_tree_size() {
        let g1 = path(&[0, 1, 2, 3, 0]);
        let g2 = path(&[0, 1, 2, 3, 0]);
        let graphs = vec![(gid(1), &g1), (gid(2), &g2)];
        let lat = mine_lattice(
            &graphs,
            &MiningConfig {
                sup_min: 1.0,
                max_edges: 2,
            },
        );
        assert!(lat.iter().all(|(_, e)| e.tree.edge_count() <= 2));
        assert!(lat.iter().any(|(_, e)| e.tree.edge_count() == 2));
    }

    #[test]
    fn branching_trees_are_found() {
        // A claw (star) frequent in two graphs.
        let claw = |extra: u32| {
            GraphBuilder::new()
                .vertices(&[0, 1, 2, 3, extra])
                .edge(0, 1)
                .edge(0, 2)
                .edge(0, 3)
                .edge(3, 4)
                .build()
        };
        let g1 = claw(4);
        let g2 = claw(5);
        let graphs = vec![(gid(1), &g1), (gid(2), &g2)];
        let lat = mine_lattice(
            &graphs,
            &MiningConfig {
                sup_min: 1.0,
                max_edges: 3,
            },
        );
        let star = GraphBuilder::new()
            .vertices(&[0, 1, 2, 3])
            .edge(0, 1)
            .edge(0, 2)
            .edge(0, 3)
            .build();
        assert!(lat.contains(&tree_key(&star)), "claw should be mined");
    }
}
