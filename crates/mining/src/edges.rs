//! Frequent / infrequent edge extraction (§3.3, §5.1).
//!
//! The FCT-Index covers frequent closed trees *and frequent edges*; the
//! IFE-Index covers infrequent edges. This module maintains, per edge
//! label, the supporting graphs and per-graph occurrence counts, updated
//! incrementally as the database evolves. It also provides the label
//! coverage `lcov(e, X) = |L(e, X)| / |X|` used for CSG edge weights (§2.3).

use midas_graph::{EdgeLabel, GraphId, LabeledGraph};
use std::collections::{BTreeMap, BTreeSet};

/// Support data for one edge label.
#[derive(Debug, Clone, Default)]
pub struct EdgeStats {
    /// Graphs containing at least one edge with this label.
    pub support: BTreeSet<GraphId>,
    /// Number of edges with this label per supporting graph.
    pub occurrences: BTreeMap<GraphId, u32>,
}

impl EdgeStats {
    /// Total occurrences across all graphs.
    pub fn total_occurrences(&self) -> u64 {
        self.occurrences.values().map(|&c| c as u64).sum()
    }
}

/// Per-edge-label statistics for a graph database, with incremental updates.
#[derive(Debug, Clone, Default)]
pub struct EdgeCatalog {
    stats: BTreeMap<EdgeLabel, EdgeStats>,
}

impl EdgeCatalog {
    /// Builds the catalog from scratch.
    pub fn build<'a, I>(graphs: I) -> Self
    where
        I: IntoIterator<Item = (GraphId, &'a LabeledGraph)>,
    {
        let mut catalog = Self::default();
        for (id, g) in graphs {
            catalog.add_graph(id, g);
        }
        catalog
    }

    /// Registers a newly inserted graph.
    pub fn add_graph(&mut self, id: GraphId, graph: &LabeledGraph) {
        for label in graph.edge_labels() {
            let stats = self.stats.entry(label).or_default();
            stats.support.insert(id);
            *stats.occurrences.entry(id).or_insert(0) += 1;
        }
    }

    /// Unregisters a deleted graph. Labels whose support empties are
    /// dropped entirely.
    pub fn remove_graph(&mut self, id: GraphId, graph: &LabeledGraph) {
        for label in graph.edge_labels() {
            if let Some(stats) = self.stats.get_mut(&label) {
                stats.support.remove(&id);
                stats.occurrences.remove(&id);
            }
        }
        self.stats.retain(|_, s| !s.support.is_empty());
    }

    /// All edge labels currently present, in label order.
    pub fn labels(&self) -> impl Iterator<Item = (EdgeLabel, &EdgeStats)> {
        self.stats.iter().map(|(&l, s)| (l, s))
    }

    /// Stats for one edge label.
    pub fn get(&self, label: EdgeLabel) -> Option<&EdgeStats> {
        self.stats.get(&label)
    }

    /// Label coverage `lcov(e, D) = |L(e, D)| / |D|` (§2.2).
    pub fn lcov(&self, label: EdgeLabel, db_len: usize) -> f64 {
        if db_len == 0 {
            return 0.0;
        }
        self.stats
            .get(&label)
            .map_or(0.0, |s| s.support.len() as f64 / db_len as f64)
    }

    /// Edge labels with support ≥ `sup_min` (the `E_freq` of Def. 5.1).
    pub fn frequent(&self, sup_min: f64, db_len: usize) -> Vec<(EdgeLabel, &EdgeStats)> {
        let min_count = min_count(sup_min, db_len);
        self.stats
            .iter()
            .filter(|(_, s)| s.support.len() >= min_count)
            .map(|(&l, s)| (l, s))
            .collect()
    }

    /// Edge labels with positive support below `sup_min` (the `E_inf` of
    /// Def. 5.2).
    pub fn infrequent(&self, sup_min: f64, db_len: usize) -> Vec<(EdgeLabel, &EdgeStats)> {
        let min_count = min_count(sup_min, db_len);
        self.stats
            .iter()
            .filter(|(_, s)| !s.support.is_empty() && s.support.len() < min_count)
            .map(|(&l, s)| (l, s))
            .collect()
    }

    /// Number of distinct edge labels tracked.
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }
}

/// Absolute support count implied by a relative threshold.
pub(crate) fn min_count(sup_min: f64, db_len: usize) -> usize {
    ((sup_min * db_len as f64).ceil() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_graph::GraphBuilder;

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    fn gid(i: u64) -> GraphId {
        GraphId(i)
    }

    #[test]
    fn build_counts_occurrences() {
        // G1: C-O-C has two C-O edges; G2: C-O has one.
        let g1 = path(&[0, 1, 0]);
        let g2 = path(&[0, 1]);
        let cat = EdgeCatalog::build([(gid(1), &g1), (gid(2), &g2)]);
        let co = cat.get(EdgeLabel::new(0, 1)).unwrap();
        assert_eq!(co.support.len(), 2);
        assert_eq!(co.occurrences[&gid(1)], 2);
        assert_eq!(co.occurrences[&gid(2)], 1);
        assert_eq!(co.total_occurrences(), 3);
    }

    #[test]
    fn lcov_matches_definition() {
        let g1 = path(&[0, 1, 0]);
        let g2 = path(&[0, 2]);
        let cat = EdgeCatalog::build([(gid(1), &g1), (gid(2), &g2)]);
        assert!((cat.lcov(EdgeLabel::new(0, 1), 2) - 0.5).abs() < 1e-12);
        assert!((cat.lcov(EdgeLabel::new(0, 2), 2) - 0.5).abs() < 1e-12);
        assert_eq!(cat.lcov(EdgeLabel::new(5, 5), 2), 0.0);
        assert_eq!(cat.lcov(EdgeLabel::new(0, 1), 0), 0.0);
    }

    #[test]
    fn frequent_infrequent_partition() {
        let g1 = path(&[0, 1]);
        let g2 = path(&[0, 1]);
        let g3 = path(&[0, 2]);
        let cat = EdgeCatalog::build([(gid(1), &g1), (gid(2), &g2), (gid(3), &g3)]);
        // sup_min = 0.5 over 3 graphs -> min count 2.
        let freq = cat.frequent(0.5, 3);
        assert_eq!(freq.len(), 1);
        assert_eq!(freq[0].0, EdgeLabel::new(0, 1));
        let inf = cat.infrequent(0.5, 3);
        assert_eq!(inf.len(), 1);
        assert_eq!(inf[0].0, EdgeLabel::new(0, 2));
    }

    #[test]
    fn remove_graph_drops_empty_labels() {
        let g1 = path(&[0, 1]);
        let g2 = path(&[0, 2]);
        let mut cat = EdgeCatalog::build([(gid(1), &g1), (gid(2), &g2)]);
        assert_eq!(cat.len(), 2);
        cat.remove_graph(gid(2), &g2);
        assert_eq!(cat.len(), 1);
        assert!(cat.get(EdgeLabel::new(0, 2)).is_none());
    }

    #[test]
    fn incremental_matches_rebuild() {
        let g1 = path(&[0, 1, 2]);
        let g2 = path(&[1, 2, 1]);
        let g3 = path(&[0, 0]);
        let mut cat = EdgeCatalog::build([(gid(1), &g1), (gid(2), &g2)]);
        cat.add_graph(gid(3), &g3);
        cat.remove_graph(gid(1), &g1);
        let rebuilt = EdgeCatalog::build([(gid(2), &g2), (gid(3), &g3)]);
        let lhs: Vec<_> = cat.labels().map(|(l, s)| (l, s.support.clone())).collect();
        let rhs: Vec<_> = rebuilt
            .labels()
            .map(|(l, s)| (l, s.support.clone()))
            .collect();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn min_count_rounds_up_and_floors_at_one() {
        assert_eq!(min_count(0.5, 3), 2);
        assert_eq!(min_count(0.5, 4), 2);
        assert_eq!(min_count(0.0, 10), 1);
        assert_eq!(min_count(0.1, 0), 1);
    }
}
