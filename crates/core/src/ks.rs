//! Two-sample Kolmogorov–Smirnov test on pattern-size distributions (§6.2).
//!
//! A swap is admissible only when the size distribution of
//! `P \ {p} ∪ {p_c}` is not significantly different from that of `P` —
//! MIDAS uses the classical two-sample KS test for this guard.

/// The two-sample KS statistic `D = sup |F₁(x) − F₂(x)|` over integer
/// samples (pattern sizes). Empty samples yield 0.
pub fn ks_statistic(a: &[usize], b: &[usize]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut xs: Vec<usize> = a.iter().chain(b.iter()).copied().collect();
    xs.sort_unstable();
    xs.dedup();
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_unstable();
    sb.sort_unstable();
    let cdf = |sorted: &[usize], x: usize| -> f64 {
        let pos = sorted.partition_point(|&v| v <= x);
        pos as f64 / sorted.len() as f64
    };
    xs.iter()
        .map(|&x| (cdf(&sa, x) - cdf(&sb, x)).abs())
        .fold(0.0, f64::max)
}

/// The critical value `c(α) · √((n + m) / (n·m))` of the asymptotic
/// two-sample KS test.
pub fn ks_critical_value(n: usize, m: usize, alpha: f64) -> f64 {
    if n == 0 || m == 0 {
        return f64::INFINITY;
    }
    // c(α) = sqrt(-ln(α/2) / 2); c(0.05) ≈ 1.358.
    let c = (-(alpha / 2.0).ln() / 2.0).sqrt();
    c * (((n + m) as f64) / ((n * m) as f64)).sqrt()
}

/// Returns `true` when the two samples are **similar** at level `alpha`
/// (the KS statistic does not exceed the critical value) — the condition
/// under which MIDAS allows a swap.
pub fn distributions_similar(a: &[usize], b: &[usize], alpha: f64) -> bool {
    ks_statistic(a, b) <= ks_critical_value(a.len(), b.len(), alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_have_zero_statistic() {
        let a = [3, 4, 4, 5, 6];
        assert_eq!(ks_statistic(&a, &a), 0.0);
        assert!(distributions_similar(&a, &a, 0.05));
    }

    #[test]
    fn disjoint_samples_have_statistic_one() {
        let a = [1, 1, 2];
        let b = [9, 9, 10];
        assert!((ks_statistic(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_statistic_value() {
        // F_a jumps to 1 at 1; F_b jumps 0.5 at 1, 1.0 at 2.
        let a = [1, 1];
        let b = [1, 2];
        assert!((ks_statistic(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn critical_value_shrinks_with_sample_size() {
        let small = ks_critical_value(5, 5, 0.05);
        let large = ks_critical_value(100, 100, 0.05);
        assert!(small > large);
        assert!(ks_critical_value(0, 5, 0.05).is_infinite());
    }

    #[test]
    fn one_element_swap_is_similar_for_gamma_30() {
        // γ = 30 patterns; replacing one size-3 with a size-12 should not
        // trip the guard.
        let mut a = vec![3; 10];
        a.extend(vec![6; 10]);
        a.extend(vec![9; 10]);
        let mut b = a.clone();
        b[0] = 12;
        assert!(distributions_similar(&a, &b, 0.05));
    }

    #[test]
    fn wholesale_shift_is_dissimilar() {
        let a = vec![3; 30];
        let b = vec![12; 30];
        assert!(!distributions_similar(&a, &b, 0.05));
    }

    #[test]
    fn empty_samples_are_trivially_similar() {
        assert!(distributions_similar(&[], &[1, 2], 0.05));
        assert_eq!(ks_statistic(&[], &[]), 0.0);
    }

    #[test]
    fn statistic_is_symmetric() {
        let a = [3, 5, 5, 8];
        let b = [4, 4, 9];
        assert!((ks_statistic(&a, &b) - ks_statistic(&b, &a)).abs() < 1e-15);
    }
}
