//! The paper's baselines (§7.1):
//!
//! * **CATAPULT** — maintenance from scratch with the original framework
//!   (frequent-subtree features);
//! * **CATAPULT++** — maintenance from scratch with FCT features and index
//!   construction (the scaffolded variant of §3.3);
//! * **Random** — MIDAS's pipeline with random swapping (exposed through
//!   [`crate::framework::SwapStrategy::Random`]);
//! * **NoMaintain** — the initial CATAPULT pattern set, never refreshed.
//!
//! The from-scratch functions return both the selected pattern set and the
//! rebuild wall-clock, which is what Exp 1/3/4 compare PMT against.

use crate::config::MidasConfig;
use midas_catapult::select_patterns;
use midas_cluster::{ClusterSet, FeatureSpace};
use midas_graph::{GraphDb, LabeledGraph};
use midas_mining::incremental::FctState;
use std::time::{Duration, Instant};

/// Result of a from-scratch rebuild.
#[derive(Debug, Clone)]
pub struct ScratchResult {
    /// The selected pattern set.
    pub patterns: Vec<LabeledGraph>,
    /// Total rebuild time (mining + clustering + selection).
    pub total_time: Duration,
    /// Clustering time alone (Exp 1 reports it separately).
    pub clustering_time: Duration,
    /// Selection time alone (comparable to PGT).
    pub selection_time: Duration,
}

/// Rebuilds the pattern set with the original CATAPULT: frequent subtrees
/// as clustering features, no indices.
pub fn catapult_from_scratch(db: &GraphDb, config: &MidasConfig) -> ScratchResult {
    rebuild(db, config, false)
}

/// Rebuilds the pattern set with CATAPULT++: frequent **closed** trees as
/// clustering features (§3.3). Index construction happens in MIDAS proper;
/// the selection loop itself is shared.
pub fn catapult_pp_from_scratch(db: &GraphDb, config: &MidasConfig) -> ScratchResult {
    rebuild(db, config, true)
}

fn rebuild(db: &GraphDb, config: &MidasConfig, closed_features: bool) -> ScratchResult {
    let start = Instant::now();
    let fct_state = FctState::build(db, config.mining());
    let space = if closed_features {
        FeatureSpace::from_fct(&fct_state.lattice, config.sup_min, db.len())
    } else {
        FeatureSpace::from_frequent(&fct_state.lattice, config.sup_min, db.len())
    };
    let cluster_start = Instant::now();
    let clusters = ClusterSet::build(db, &fct_state.lattice, space, config.clustering());
    let clustering_time = cluster_start.elapsed();
    let select_start = Instant::now();
    let patterns = select_patterns(&clusters, &fct_state.edges, db.len(), &config.selection());
    let selection_time = select_start.elapsed();
    ScratchResult {
        patterns,
        total_time: start.elapsed(),
        clustering_time,
        selection_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_graph::GraphBuilder;

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    fn db() -> GraphDb {
        GraphDb::from_graphs((0..8).map(|i| path(&[0, 1, 2, 0, (i % 2) as u32])))
    }

    #[test]
    fn catapult_scratch_selects_patterns() {
        let result = catapult_from_scratch(&db(), &MidasConfig::small_defaults());
        assert!(!result.patterns.is_empty());
        assert!(result.total_time >= result.clustering_time);
        assert!(result.total_time >= result.selection_time);
    }

    #[test]
    fn catapult_pp_uses_fewer_or_equal_features() {
        // Not directly observable here, but both must produce valid sets.
        let cfg = MidasConfig::small_defaults();
        let a = catapult_from_scratch(&db(), &cfg);
        let b = catapult_pp_from_scratch(&db(), &cfg);
        assert!(!a.patterns.is_empty());
        assert!(!b.patterns.is_empty());
        for p in a.patterns.iter().chain(b.patterns.iter()) {
            assert!(p.is_connected());
            assert!(p.edge_count() >= cfg.budget.eta_min);
            assert!(p.edge_count() <= cfg.budget.eta_max);
        }
    }

    #[test]
    fn rebuild_is_deterministic() {
        let cfg = MidasConfig::small_defaults();
        let a = catapult_pp_from_scratch(&db(), &cfg);
        let b = catapult_pp_from_scratch(&db(), &cfg);
        assert_eq!(a.patterns, b.patterns);
    }
}
