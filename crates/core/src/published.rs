//! Epoch-stamped, `Arc`-swapped publication of the live pattern set.
//!
//! A visual graph query interface serves the canned pattern set to *many*
//! concurrent users while maintenance (`Midas::apply_batch`) mutates it.
//! Readers must never observe a half-swapped set and must never wait for a
//! batch: the multi-scan swap holds `&mut` over the [`PatternStore`] for
//! the whole maintenance round, so handing readers the store itself is a
//! non-starter.
//!
//! [`Published<T>`] is the serving-side answer: an immutable snapshot
//! behind an atomically swapped [`Arc`]. Writers build the next snapshot
//! *off to the side* and [`Published::publish`] it with one pointer store;
//! readers [`Published::read`] an `Arc` clone and keep it for as long as
//! they like. The swap is guarded by an [`RwLock`] held only for the
//! pointer store / pointer clone — nanoseconds — never across any
//! maintenance work, so a reader is never blocked *by a batch*, only (at
//! worst) by another reader's pointer clone. Consistency is structural:
//! a snapshot is immutable once published, so "partially updated" states
//! are unrepresentable.
//!
//! [`PatternSnapshot`] is the payload [`crate::Midas`] publishes at
//! bootstrap and at the end of every `apply_batch`: the pattern graphs, a
//! monotone epoch (batches applied when the snapshot was built), and the
//! graphlet distribution of the database at publish time — enough for a
//! reader to compute its own *staleness* (batches behind + graphlet drift)
//! against a later snapshot without touching `Midas` at all.
//!
//! [`PatternStore`]: crate::patterns::PatternStore

use midas_graph::graphlets::GraphletDistribution;
use midas_graph::LabeledGraph;
use std::sync::{Arc, RwLock};

/// A shared cell holding the latest published `Arc<T>`.
///
/// Cloning the cell clones the *handle* (both ends see the same slot);
/// cloning never copies the payload. Reads and publishes are wait-free in
/// practice: the internal lock protects only an `Arc` pointer
/// clone/store, so no reader ever waits on in-progress snapshot
/// *construction* — writers assemble the new value before touching the
/// cell.
#[derive(Debug)]
pub struct Published<T> {
    slot: Arc<RwLock<Arc<T>>>,
}

impl<T> Clone for Published<T> {
    fn clone(&self) -> Self {
        Published {
            slot: Arc::clone(&self.slot),
        }
    }
}

impl<T> Published<T> {
    /// Creates a cell with an initial published value.
    pub fn new(value: T) -> Self {
        Published {
            slot: Arc::new(RwLock::new(Arc::new(value))),
        }
    }

    /// The latest published snapshot. The returned `Arc` stays valid (and
    /// immutable) however many publishes happen afterwards.
    pub fn read(&self) -> Arc<T> {
        self.slot.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Atomically replaces the published snapshot. Readers holding the
    /// previous `Arc` keep it; new reads see `value`.
    pub fn publish(&self, value: T) {
        let next = Arc::new(value);
        *self.slot.write().unwrap_or_else(|e| e.into_inner()) = next;
    }
}

impl<T: Default> Default for Published<T> {
    fn default() -> Self {
        Published::new(T::default())
    }
}

/// One immutable publication of the canned pattern set, with everything a
/// reader needs to judge how stale its copy is.
#[derive(Debug, Clone, Default)]
pub struct PatternSnapshot {
    /// Batches applied when this snapshot was published (0 = bootstrap).
    /// Monotone per `Midas` instance: `latest.epoch - mine.epoch` is the
    /// "batches behind" staleness of a held snapshot.
    pub epoch: u64,
    /// The canned pattern set as of `epoch`.
    pub patterns: Vec<LabeledGraph>,
    /// Graphlet distribution of the database at publish time.
    /// `mine.graphlets.euclidean_distance(&latest.graphlets)` is the
    /// drift-at-read-time staleness measure (same metric that classifies
    /// batches as major/minor, §3.4).
    pub graphlets: GraphletDistribution,
    /// Database size at publish time.
    pub db_len: usize,
    /// Wall-clock publish time (unix milliseconds; 0 if the clock is
    /// unavailable).
    pub published_unix_ms: u64,
}

impl PatternSnapshot {
    /// Batches applied between this snapshot and `latest` (saturating, so
    /// comparing snapshots from different `Midas` instances degrades to 0
    /// instead of wrapping).
    pub fn batches_behind(&self, latest: &PatternSnapshot) -> u64 {
        latest.epoch.saturating_sub(self.epoch)
    }

    /// Graphlet-distribution distance between this snapshot's database
    /// view and `latest`'s — how far the data moved since this pattern
    /// set was published.
    pub fn drift_to(&self, latest: &PatternSnapshot) -> f64 {
        self.graphlets.euclidean_distance(&latest.graphlets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn read_returns_latest_publish() {
        let cell = Published::new(1u64);
        assert_eq!(*cell.read(), 1);
        cell.publish(2);
        assert_eq!(*cell.read(), 2);
    }

    #[test]
    fn old_readers_keep_their_snapshot() {
        let cell = Published::new(vec![1, 2, 3]);
        let held = cell.read();
        cell.publish(vec![9]);
        assert_eq!(*held, vec![1, 2, 3], "held Arc is immutable");
        assert_eq!(*cell.read(), vec![9]);
    }

    #[test]
    fn clones_share_the_slot() {
        let a = Published::new(0u64);
        let b = a.clone();
        a.publish(7);
        assert_eq!(*b.read(), 7);
    }

    #[test]
    fn concurrent_reads_and_publishes_never_tear() {
        // Snapshots are (n, n) pairs; a torn read would surface a mixed
        // pair. Immutability of the published Arc makes that impossible —
        // this test pins the invariant under real thread interleavings.
        let cell = Published::new((0u64, 0u64));
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    while !stop.load(Ordering::Relaxed) {
                        let snap = cell.read();
                        assert_eq!(snap.0, snap.1, "torn snapshot observed");
                    }
                });
            }
            for n in 1..=1000u64 {
                cell.publish((n, n));
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(*cell.read(), (1000, 1000));
    }

    #[test]
    fn staleness_measures() {
        let old = PatternSnapshot {
            epoch: 3,
            ..PatternSnapshot::default()
        };
        let new = PatternSnapshot {
            epoch: 8,
            ..PatternSnapshot::default()
        };
        assert_eq!(old.batches_behind(&new), 5);
        assert_eq!(new.batches_behind(&old), 0, "saturates, never wraps");
        assert_eq!(old.drift_to(&new), 0.0);
    }
}
