//! Maintenance of patterns with `η_min ≤ 2` — the case the paper calls
//! straightforward and defers to its technical report (§3.1 Remark).
//!
//! Size-1/2 patterns are (combinations of) frequent edges, so maintaining
//! them needs no clustering, no random walks and no swapping: the top
//! frequent edges by support *are* the optimal small patterns for subgraph
//! coverage, and the edge catalog already tracks every support set
//! incrementally. [`small_pattern_set`] materializes them; the framework
//! refreshes the set after every batch when configured with small-pattern
//! slots.

use midas_graph::LabeledGraph;
use midas_mining::canonical::edge_tree;
use midas_mining::EdgeCatalog;

/// Returns up to `slots` single-edge patterns, ordered by descending
/// support (ties broken by label for determinism).
pub fn small_pattern_set(catalog: &EdgeCatalog, slots: usize) -> Vec<LabeledGraph> {
    let mut ranked: Vec<(usize, midas_graph::EdgeLabel)> = catalog
        .labels()
        .map(|(label, stats)| (stats.support.len(), label))
        .collect();
    ranked.sort_by_key(|&(support, label)| (std::cmp::Reverse(support), label));
    ranked
        .into_iter()
        .take(slots)
        .map(|(_, label)| edge_tree(label.0, label.1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_graph::{GraphBuilder, GraphId};

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    fn catalog() -> EdgeCatalog {
        // C-O in 3 graphs, O-N in 2, N-S in 1.
        let g1 = path(&[0, 1, 2]);
        let g2 = path(&[0, 1, 2, 3]);
        let g3 = path(&[0, 1]);
        EdgeCatalog::build([(GraphId(1), &g1), (GraphId(2), &g2), (GraphId(3), &g3)])
    }

    #[test]
    fn top_edges_by_support() {
        let patterns = small_pattern_set(&catalog(), 2);
        assert_eq!(patterns.len(), 2);
        // Highest support first: C-O then O-N.
        assert_eq!(patterns[0].sorted_labels(), vec![0, 1]);
        assert_eq!(patterns[1].sorted_labels(), vec![1, 2]);
        assert!(patterns.iter().all(|p| p.edge_count() == 1));
    }

    #[test]
    fn slots_cap_and_empty_catalog() {
        assert_eq!(small_pattern_set(&catalog(), 100).len(), 3);
        assert!(small_pattern_set(&EdgeCatalog::default(), 5).is_empty());
        assert!(small_pattern_set(&catalog(), 0).is_empty());
    }

    #[test]
    fn refresh_tracks_catalog_changes() {
        let mut cat = catalog();
        // A wave of S-S edges overtakes everything.
        for i in 10..20 {
            let g = path(&[3, 3]);
            cat.add_graph(GraphId(i), &g);
        }
        let patterns = small_pattern_set(&cat, 1);
        assert_eq!(patterns[0].sorted_labels(), vec![3, 3]);
    }
}
