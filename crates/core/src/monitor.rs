//! The graphlet-frequency change monitor (§3.4).
//!
//! `D` is viewed as one network of disconnected components; its graphlet
//! frequency distribution `ψ_D` characterizes topology (Pržulj \[31\]).
//! MIDAS compares `dist(ψ_D, ψ_{D⊕ΔD})` against the evolution ratio
//! threshold `ε` to decide between a *major* (Type 1) and *minor* (Type 2)
//! modification. Per-graph counts are cached so a batch update costs one
//! graphlet count per touched graph.

use midas_graph::graphlets::{count_graphlets, GraphletCounts, GraphletDistribution};
use midas_graph::{GraphDb, GraphId, LabeledGraph};
use std::collections::HashMap;

/// Incrementally maintained database-level graphlet statistics.
#[derive(Debug, Clone, Default)]
pub struct GraphletMonitor {
    per_graph: HashMap<GraphId, GraphletCounts>,
    total: GraphletCounts,
}

impl GraphletMonitor {
    /// Builds the monitor from scratch.
    pub fn build(db: &GraphDb) -> Self {
        let mut monitor = Self::default();
        for (id, g) in db.iter() {
            monitor.add_graph(id, g);
        }
        monitor
    }

    /// Registers an inserted graph. Re-adding an already-tracked `id`
    /// *replaces* its contribution (the displaced counts are subtracted
    /// first), so the totals always equal the sum over `per_graph` — the
    /// invariant `build(db) == incremental` that the oracle harness checks.
    pub fn add_graph(&mut self, id: GraphId, graph: &LabeledGraph) {
        let counts = count_graphlets(graph);
        if let Some(displaced) = self.per_graph.insert(id, counts) {
            self.total.sub(&displaced);
        }
        self.total.add(&counts);
    }

    /// Unregisters a deleted graph. An id that was never added (or was
    /// already removed) is a no-op: totals never underflow and
    /// [`GraphletMonitor::distribution`] stays a valid distribution.
    pub fn remove_graph(&mut self, id: GraphId) {
        if let Some(counts) = self.per_graph.remove(&id) {
            self.total.sub(&counts);
        }
    }

    /// The current distribution `ψ_D`.
    pub fn distribution(&self) -> GraphletDistribution {
        self.total.distribution()
    }

    /// The raw totals.
    pub fn totals(&self) -> &GraphletCounts {
        &self.total
    }

    /// Number of graphs tracked.
    pub fn len(&self) -> usize {
        self.per_graph.len()
    }

    /// Whether the monitor tracks no graphs.
    pub fn is_empty(&self) -> bool {
        self.per_graph.is_empty()
    }
}

/// The modification classification of §3.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Modification {
    /// Type 1 — `dist(ψ_D, ψ_{D⊕ΔD}) ≥ ε`: patterns must be maintained.
    Major,
    /// Type 2 — below `ε`: clusters/CSGs/indices are maintained, patterns
    /// stay.
    Minor,
}

/// Classifies a modification given the pre/post distributions.
///
/// With telemetry enabled, exposes the drift as the `monitor.drift` gauge
/// and counts classifications in `monitor.major`/`monitor.minor`.
pub fn classify(
    before: &GraphletDistribution,
    after: &GraphletDistribution,
    epsilon: f64,
) -> (Modification, f64) {
    let distance = before.euclidean_distance(after);
    let kind = if distance >= epsilon {
        Modification::Major
    } else {
        Modification::Minor
    };
    midas_obs::gauge_set!("monitor.drift", distance);
    match kind {
        Modification::Major => midas_obs::counter_add!("monitor.major", 1),
        Modification::Minor => midas_obs::counter_add!("monitor.minor", 1),
    }
    (kind, distance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_graph::GraphBuilder;

    fn path(n: usize) -> LabeledGraph {
        let labels = vec![0u32; n];
        let vs: Vec<u32> = (0..n as u32).collect();
        GraphBuilder::new().vertices(&labels).path(&vs).build()
    }

    fn clique4() -> LabeledGraph {
        let mut g = LabeledGraph::new();
        for _ in 0..4 {
            g.add_vertex(0);
        }
        for u in 0..4u32 {
            for v in u + 1..4 {
                g.add_edge(u, v);
            }
        }
        g
    }

    #[test]
    fn build_matches_incremental() {
        let db = GraphDb::from_graphs([path(4), path(5), clique4()]);
        let built = GraphletMonitor::build(&db);
        let mut incremental = GraphletMonitor::default();
        for (id, g) in db.iter() {
            incremental.add_graph(id, g);
        }
        assert_eq!(built.totals(), incremental.totals());
        assert_eq!(built.len(), 3);
    }

    #[test]
    fn remove_restores_previous_distribution() {
        let mut db = GraphDb::from_graphs([path(4), path(5)]);
        let mut monitor = GraphletMonitor::build(&db);
        let before = *monitor.totals();
        let id = db.insert(clique4());
        monitor.add_graph(id, db.get(id).unwrap());
        assert_ne!(*monitor.totals(), before);
        monitor.remove_graph(id);
        assert_eq!(*monitor.totals(), before);
        // Removing an unknown id is a no-op.
        monitor.remove_graph(GraphId(999));
        assert_eq!(*monitor.totals(), before);
    }

    #[test]
    fn readding_an_id_replaces_instead_of_double_counting() {
        // Regression: `add_graph` used to add the new counts without
        // subtracting the displaced entry, so re-registering an id (e.g. a
        // deletion batch whose id the db reuses) double-counted the totals
        // forever.
        let mut monitor = GraphletMonitor::default();
        let id = GraphId(7);
        monitor.add_graph(id, &clique4());
        monitor.add_graph(id, &path(5));
        let mut fresh = GraphletMonitor::default();
        fresh.add_graph(id, &path(5));
        assert_eq!(monitor.totals(), fresh.totals(), "re-add must replace");
        assert_eq!(monitor.len(), 1);
        monitor.remove_graph(id);
        assert_eq!(*monitor.totals(), GraphletCounts::default());
    }

    #[test]
    fn removing_a_never_added_id_keeps_distribution_valid() {
        // Regression: totals must not underflow/wrap and the distribution
        // must stay a probability vector after a bogus removal.
        let mut monitor = GraphletMonitor::default();
        let id = GraphId(0);
        monitor.add_graph(id, &clique4());
        let before = *monitor.totals();
        monitor.remove_graph(GraphId(12345));
        monitor.remove_graph(GraphId(12345)); // twice: still a no-op
        assert_eq!(*monitor.totals(), before);
        let dist = monitor.distribution();
        let mass: f64 = dist.as_array().iter().sum();
        assert!(dist.as_array().iter().all(|&f| (0.0..=1.0).contains(&f)));
        assert!((mass - 1.0).abs() < 1e-9, "mass {mass}");
        // Double-remove of a real id: second call is a no-op too.
        monitor.remove_graph(id);
        monitor.remove_graph(id);
        assert_eq!(*monitor.totals(), GraphletCounts::default());
    }

    #[test]
    fn same_distribution_growth_is_minor() {
        let mut monitor = GraphletMonitor::default();
        let mut db = GraphDb::new();
        for _ in 0..10 {
            let id = db.insert(path(5));
            monitor.add_graph(id, db.get(id).unwrap());
        }
        let before = monitor.distribution();
        for _ in 0..3 {
            let id = db.insert(path(5));
            monitor.add_graph(id, db.get(id).unwrap());
        }
        let (kind, distance) = classify(&before, &monitor.distribution(), 0.1);
        assert_eq!(kind, Modification::Minor);
        assert!(distance < 1e-9, "identical shapes never drift");
    }

    #[test]
    fn topology_shift_is_major() {
        let mut monitor = GraphletMonitor::default();
        let mut db = GraphDb::new();
        for _ in 0..5 {
            let id = db.insert(path(5));
            monitor.add_graph(id, db.get(id).unwrap());
        }
        let before = monitor.distribution();
        for _ in 0..10 {
            let id = db.insert(clique4());
            monitor.add_graph(id, db.get(id).unwrap());
        }
        let (kind, distance) = classify(&before, &monitor.distribution(), 0.1);
        assert_eq!(kind, Modification::Major, "distance {distance}");
    }

    #[test]
    fn classification_threshold_is_inclusive() {
        let a = GraphletCounts::default().distribution();
        let b = a;
        let (kind, d) = classify(&a, &b, 0.0);
        assert_eq!(d, 0.0);
        assert_eq!(kind, Modification::Major, "d >= ε with ε = 0");
    }

    #[test]
    fn epsilon_boundary_cases() {
        // Two genuinely different distributions, so the drift is nonzero
        // and we can place ε exactly on, just above, and just below it.
        let before = GraphletMonitor::build(&GraphDb::from_graphs([path(5), path(5)]));
        let after = GraphletMonitor::build(&GraphDb::from_graphs([path(5), clique4()]));
        let (a, b) = (before.distribution(), after.distribution());
        let d = a.euclidean_distance(&b);
        assert!(d > 1e-6, "test needs real drift, got {d}");

        // ε == d: inclusive threshold classifies Major.
        let (kind, reported) = classify(&a, &b, d);
        assert_eq!(reported, d);
        assert_eq!(kind, Modification::Major, "d == ε is Major");

        // ε just above d: Minor.
        let eps_above = d * (1.0 + 1e-12);
        assert!(eps_above > d);
        assert_eq!(classify(&a, &b, eps_above).0, Modification::Minor);

        // ε just below d: Major.
        let eps_below = d * (1.0 - 1e-12);
        assert!(eps_below < d);
        assert_eq!(classify(&a, &b, eps_below).0, Modification::Major);
    }
}
