//! MIDAS configuration — the knobs of §7.1's "Parameter settings".

use midas_catapult::PatternBudget;
use midas_graph::MatcherKind;
use midas_mining::MiningConfig;
use midas_obs::TelemetryConfig;

/// All tunables of the MIDAS framework, defaulting to the paper's settings
/// (§7.1): `η_min = 3`, `η_max = 12`, `γ = 30`, `sup_min = 0.5`, `ε = 0.1`,
/// `κ = λ = 0.1`.
#[derive(Debug, Clone, Copy)]
pub struct MidasConfig {
    /// Pattern budget `b = (η_min, η_max, γ)`.
    pub budget: PatternBudget,
    /// Minimum support for frequent (closed) trees.
    pub sup_min: f64,
    /// Maximum feature-tree size in edges.
    pub max_tree_edges: usize,
    /// Evolution ratio threshold `ε`: graphlet-distribution distance at or
    /// above this marks a *major* modification (§3.4).
    pub epsilon: f64,
    /// Swapping threshold `κ` (Eq. 2, sw1).
    pub kappa: f64,
    /// Swapping threshold `λ` (sw2); the paper sets `λ = κ`.
    pub lambda: f64,
    /// Number of coarse clusters. The paper's `τ = 10 / |D|` translates to
    /// `τ · |D| = 10` coarse clusters.
    pub coarse_clusters: usize,
    /// Maximum cluster size `N` before fine clustering.
    pub max_cluster_size: usize,
    /// Lazy-sample size for `D_s` used in `scov` computations (§6.1).
    pub sample_size: usize,
    /// Random walks per CSG per selection round.
    pub walks: usize,
    /// Steps per random walk.
    pub walk_length: usize,
    /// Seed ranks tried per (CSG, size) during candidate generation.
    pub seeds_per_size: usize,
    /// Multiplicative-weights penalty after each selection.
    pub mwu_penalty: f64,
    /// KS-test significance level for the size-distribution guard (§6.2).
    pub ks_alpha: f64,
    /// Number of single-edge "small pattern" slots maintained next to the
    /// main panel when `η_min ≤ 2` would otherwise be wanted (§3.1 Remark;
    /// see [`crate::small_patterns`]). Zero disables the feature.
    pub small_pattern_slots: usize,
    /// Worker threads for the parallel isomorphism kernel. `0` means auto:
    /// the `MIDAS_THREADS` environment variable if set, otherwise the
    /// machine's available parallelism.
    pub threads: usize,
    /// Subgraph-matching implementation for the kernel: the plan-compiled
    /// CSR matcher (default) or the reference VF2 twin.
    /// [`crate::Midas::bootstrap`] folds in the `MIDAS_MATCHER=plan|vf2`
    /// env override, mirroring how `telemetry` handles its env knobs.
    pub matcher: MatcherKind,
    /// Master RNG seed; every stochastic component derives from it.
    pub seed: u64,
    /// Telemetry knobs (spans, counters, trace export, log level).
    /// [`crate::Midas::bootstrap`] applies this after folding in the
    /// `MIDAS_TELEMETRY`/`MIDAS_TRACE_OUT`/`MIDAS_LOG` env overrides.
    pub telemetry: TelemetryConfig,
}

impl Default for MidasConfig {
    fn default() -> Self {
        MidasConfig {
            budget: PatternBudget::default(),
            sup_min: 0.5,
            max_tree_edges: 4,
            epsilon: 0.1,
            kappa: 0.1,
            lambda: 0.1,
            coarse_clusters: 10,
            max_cluster_size: 100,
            sample_size: 200,
            walks: 100,
            walk_length: 24,
            seeds_per_size: 3,
            mwu_penalty: 0.5,
            ks_alpha: 0.05,
            small_pattern_slots: 0,
            threads: 0,
            matcher: MatcherKind::Plan,
            seed: 0,
            telemetry: TelemetryConfig::default(),
        }
    }
}

impl MidasConfig {
    /// A configuration scaled for unit tests and doctests: tiny budget,
    /// small trees, few clusters.
    pub fn small_defaults() -> Self {
        MidasConfig {
            budget: PatternBudget {
                eta_min: 3,
                eta_max: 4,
                gamma: 4,
            },
            sup_min: 0.4,
            max_tree_edges: 3,
            coarse_clusters: 2,
            max_cluster_size: 50,
            sample_size: 50,
            walks: 40,
            walk_length: 10,
            seeds_per_size: 2,
            ..Self::default()
        }
    }

    /// The mining configuration implied by this config.
    pub fn mining(&self) -> MiningConfig {
        MiningConfig {
            sup_min: self.sup_min,
            max_edges: self.max_tree_edges,
        }
    }

    /// The selection configuration implied by this config.
    pub fn selection(&self) -> midas_catapult::SelectionConfig {
        midas_catapult::SelectionConfig {
            budget: self.budget,
            walks: self.walks,
            walk_length: self.walk_length,
            seeds_per_size: self.seeds_per_size,
            mwu_penalty: self.mwu_penalty,
            seed: self.seed,
        }
    }

    /// The clustering configuration implied by this config.
    pub fn clustering(&self) -> midas_cluster::ClusterConfig {
        midas_cluster::ClusterConfig {
            coarse_clusters: self.coarse_clusters,
            max_cluster_size: self.max_cluster_size,
            seed: self.seed,
            ..midas_cluster::ClusterConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_section_7_1() {
        let c = MidasConfig::default();
        assert_eq!(c.budget.eta_min, 3);
        assert_eq!(c.budget.eta_max, 12);
        assert_eq!(c.budget.gamma, 30);
        assert!((c.sup_min - 0.5).abs() < 1e-12);
        assert!((c.epsilon - 0.1).abs() < 1e-12);
        assert!((c.kappa - 0.1).abs() < 1e-12);
        assert!((c.lambda - c.kappa).abs() < 1e-12, "paper sets λ = κ");
        assert_eq!(c.coarse_clusters, 10, "τ·|D| = 10");
    }

    #[test]
    fn derived_configs_propagate_values() {
        let c = MidasConfig {
            sup_min: 0.3,
            max_tree_edges: 5,
            seed: 42,
            ..MidasConfig::default()
        };
        assert!((c.mining().sup_min - 0.3).abs() < 1e-12);
        assert_eq!(c.mining().max_edges, 5);
        assert_eq!(c.selection().seed, 42);
        assert_eq!(c.clustering().seed, 42);
    }
}
