//! The canned pattern store: stable [`PatternId`]s for the TP/EP matrix
//! columns, isomorphism-deduplicated membership.

use midas_graph::canonical::canonical_code;
use midas_graph::{CanonicalCode, LabeledGraph};
use midas_index::PatternId;
use std::collections::BTreeMap;

/// The current canned pattern set `P`, with stable ids.
#[derive(Debug, Clone, Default)]
pub struct PatternStore {
    patterns: BTreeMap<PatternId, (LabeledGraph, CanonicalCode)>,
    next: u64,
}

impl PatternStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a store from initial patterns (e.g. CATAPULT's selection).
    pub fn from_patterns<I>(patterns: I) -> Self
    where
        I: IntoIterator<Item = LabeledGraph>,
    {
        let mut store = Self::new();
        for p in patterns {
            store.insert(p);
        }
        store
    }

    /// Inserts a pattern; returns `None` (and drops it) when an isomorphic
    /// pattern is already present.
    pub fn insert(&mut self, pattern: LabeledGraph) -> Option<PatternId> {
        let code = canonical_code(&pattern);
        if self.patterns.values().any(|(_, c)| *c == code) {
            return None;
        }
        let id = PatternId(self.next);
        self.next += 1;
        self.patterns.insert(id, (pattern, code));
        Some(id)
    }

    /// Removes a pattern by id.
    pub fn remove(&mut self, id: PatternId) -> Option<LabeledGraph> {
        self.patterns.remove(&id).map(|(g, _)| g)
    }

    /// Looks up a pattern.
    pub fn get(&self, id: PatternId) -> Option<&LabeledGraph> {
        self.patterns.get(&id).map(|(g, _)| g)
    }

    /// Whether an isomorphic pattern is present.
    pub fn contains_isomorphic(&self, pattern: &LabeledGraph) -> bool {
        let code = canonical_code(pattern);
        self.patterns.values().any(|(_, c)| *c == code)
    }

    /// Number of patterns `|P|`.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Iterates `(id, pattern)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (PatternId, &LabeledGraph)> {
        self.patterns.iter().map(|(&id, (g, _))| (id, g))
    }

    /// The patterns as a vector (id order).
    pub fn graphs(&self) -> Vec<LabeledGraph> {
        self.patterns.values().map(|(g, _)| g.clone()).collect()
    }

    /// The sizes (edge counts) of all patterns, id order — input to the KS
    /// guard.
    pub fn sizes(&self) -> Vec<usize> {
        self.patterns
            .values()
            .map(|(g, _)| g.edge_count())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_graph::GraphBuilder;

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    #[test]
    fn insert_assigns_fresh_ids() {
        let mut store = PatternStore::new();
        let a = store.insert(path(&[0, 1])).unwrap();
        let b = store.insert(path(&[0, 2])).unwrap();
        assert_ne!(a, b);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn isomorphic_duplicates_are_rejected() {
        let mut store = PatternStore::new();
        store.insert(path(&[0, 1, 2])).unwrap();
        // Same path written backwards.
        assert!(store.insert(path(&[2, 1, 0])).is_none());
        assert_eq!(store.len(), 1);
        assert!(store.contains_isomorphic(&path(&[0, 1, 2])));
    }

    #[test]
    fn remove_frees_the_structure_for_reinsertion() {
        let mut store = PatternStore::new();
        let id = store.insert(path(&[0, 1])).unwrap();
        let got = store.remove(id).unwrap();
        assert_eq!(got.edge_count(), 1);
        assert!(store.is_empty());
        let id2 = store.insert(path(&[0, 1])).unwrap();
        assert_ne!(id, id2, "ids are never reused");
    }

    #[test]
    fn sizes_and_graphs_align() {
        let mut store = PatternStore::new();
        store.insert(path(&[0, 1])).unwrap();
        store.insert(path(&[0, 1, 2])).unwrap();
        assert_eq!(store.sizes(), vec![1, 2]);
        assert_eq!(store.graphs().len(), 2);
    }

    #[test]
    fn get_and_iter() {
        let mut store = PatternStore::new();
        let id = store.insert(path(&[0, 1])).unwrap();
        assert!(store.get(id).is_some());
        assert_eq!(store.iter().count(), 1);
        assert!(store.get(PatternId(99)).is_none());
    }
}
