//! The MIDAS framework — Algorithm 1 end to end.
//!
//! [`Midas`] owns the database and every derived structure (FCT lattice,
//! edge catalog, clusters + CSGs, graphlet monitor, FCT-/IFE-Index, and the
//! canned pattern set). [`Midas::apply_batch`] is Algorithm 1:
//!
//! 1. capture `ψ_D`, apply `ΔD` to the database;
//! 2. maintain the FCT state (§4.2) and the edge catalog;
//! 3. assign `Δ⁺` to clusters / remove `Δ⁻` (§4.3), with CSG updates
//!    (§4.4) and fine re-clustering along the way;
//! 4. maintain the indices (§5.1);
//! 5. classify the modification by graphlet drift (§3.4); for a **major**
//!    one, generate promising candidates from dirty CSGs (§5.2) and run
//!    the multi-scan swap (§6.2).
//!
//! Every phase is timed; the report exposes PMT (total) and PGT
//! (candidate generation + swapping), the quantities §7 plots.
//!
//! When telemetry is enabled (`MidasConfig::telemetry`, or the
//! `MIDAS_TELEMETRY` environment variable — see `midas-obs`), each phase
//! additionally runs under a span (`batch.ingest`, `batch.fct`,
//! `batch.cluster`, `batch.index`, `batch.classify`, `batch.candidates`,
//! `batch.swap`), the batch records `pmt_us`/`pgt_us` counters, and the
//! report carries a [`MetricsSnapshot`] delta scoped to just that batch.

use crate::candidate_gen::{coverage_state, generate_promising_candidates, GenerationParams};
use crate::config::MidasConfig;
use crate::metrics::ScovContext;
use crate::monitor::{classify, GraphletMonitor, Modification};
use crate::patterns::PatternStore;
use crate::published::{PatternSnapshot, Published};
use crate::sampling::sample_database;
use crate::swap::{multi_scan_swap, SwapParams};
use midas_catapult::score::SetQuality;
use midas_catapult::{select_patterns, WeightedCsg};
use midas_cluster::{ClusterSet, FeatureSpace};
use midas_graph::{BatchUpdate, GraphDb, GraphId, KernelError, LabeledGraph, MatchKernel};
use midas_index::{FctIndex, IfeIndex, PatternId};
use midas_mining::incremental::FctState;
use midas_mining::TreeKey;
use midas_obs::{MetricsSnapshot, TelemetryConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a batch was classified and handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModificationKind {
    /// Type 1: patterns were maintained.
    Major,
    /// Type 2: only clusters/CSGs/indices were maintained.
    Minor,
}

/// Timing and outcome report for one batch (the measurements of §7).
#[derive(Debug, Clone)]
pub struct MaintenanceReport {
    /// Major or minor modification.
    pub kind: ModificationKind,
    /// Graphlet-distribution distance `dist(ψ_D, ψ_{D⊕ΔD})`.
    pub distance: f64,
    /// Total pattern maintenance time (PMT).
    pub pattern_maintenance_time: Duration,
    /// Cluster + CSG maintenance time.
    pub clustering_time: Duration,
    /// FCT maintenance time.
    pub fct_time: Duration,
    /// Index maintenance time.
    pub index_time: Duration,
    /// Candidate generation time (half of PGT).
    pub candidate_time: Duration,
    /// Swap time (the other half of PGT).
    pub swap_time: Duration,
    /// Number of promising candidates generated.
    pub candidates_generated: usize,
    /// Number of swaps performed.
    pub swaps: usize,
    /// Metrics delta scoped to this batch (empty when telemetry is off):
    /// phase spans, `pmt_us`/`pgt_us`, VF2 and cache counters, exec
    /// fan-out accounting.
    pub telemetry: MetricsSnapshot,
    /// A worker panic contained during this batch (e.g. an injected
    /// `MIDAS_FAULT`): the failing phase was abandoned, later
    /// pattern-maintenance phases were skipped, and the process kept
    /// running. `None` on a healthy batch.
    pub error: Option<KernelError>,
}

impl MaintenanceReport {
    /// Pattern generation time PGT = candidate generation + swapping
    /// (Exp 1's definition).
    pub fn pattern_generation_time(&self) -> Duration {
        self.candidate_time + self.swap_time
    }
}

/// The MIDAS framework state.
pub struct Midas {
    config: MidasConfig,
    db: GraphDb,
    fct_state: FctState,
    clusters: ClusterSet,
    monitor: GraphletMonitor,
    fct_index: FctIndex,
    ife_index: IfeIndex,
    patterns: PatternStore,
    kernel: MatchKernel,
    batch_counter: u64,
    obs_server: Option<midas_obs::ObsServer>,
    /// The serving-side pattern snapshot: republished after bootstrap and
    /// at the end of every batch, read lock-free (never blocked by a
    /// batch) by any thread holding [`Midas::snapshot_handle`].
    published: Published<PatternSnapshot>,
}

impl Midas {
    /// Bootstraps MIDAS on an initial database: mines the FCT state,
    /// clusters with FCT features (the CATAPULT++ configuration), selects
    /// the initial pattern set, and builds both indices.
    ///
    /// Returns `Err` only if the database is empty.
    pub fn bootstrap(db: GraphDb, mut config: MidasConfig) -> Result<Self, String> {
        config.telemetry = config.telemetry.from_env();
        if let Some(matcher) = midas_graph::MatcherKind::from_env() {
            config.matcher = matcher;
        }
        config.telemetry.activate();
        Midas::bootstrap_inner(db, config)
    }

    /// [`Midas::bootstrap`] for instances *embedded in a host daemon*
    /// (one per tenant in `midas-serve`): the configuration is taken
    /// exactly as given — no `MIDAS_*` environment overrides, and no
    /// per-instance observability server (the host process owns the
    /// single [`midas_obs::ObsServer`]; a second tenant would otherwise
    /// fight it for the `MIDAS_SERVE` port). Everything else — mining,
    /// clustering, selection, index builds, snapshot publication — is
    /// identical, so an embedded instance fed the same batches is
    /// bit-identical to a standalone one (the oracle's serve-vs-library
    /// parity check pins this).
    ///
    /// Unlike [`Midas::bootstrap`], this never calls
    /// [`TelemetryConfig::activate`]: global telemetry switches belong to
    /// the host process, and a tenant bootstrapping mid-flight must not
    /// flip them out from under the other tenants.
    pub fn bootstrap_embedded(db: GraphDb, mut config: MidasConfig) -> Result<Self, String> {
        config.telemetry.serve = false;
        Midas::bootstrap_inner(db, config)
    }

    fn bootstrap_inner(db: GraphDb, config: MidasConfig) -> Result<Self, String> {
        if db.is_empty() {
            return Err("cannot bootstrap MIDAS on an empty database".into());
        }
        // Live observability: bind the HTTP endpoints and arm the flight
        // recorder before any batch runs, so the very first crash or scrape
        // already has context.
        let obs_server = if config.telemetry.serve {
            midas_obs::flight::install_panic_hook();
            midas_obs::flight::set_span_capture(true);
            let addr = TelemetryConfig::serve_addr();
            match midas_obs::ObsServer::start(&addr) {
                Ok(server) => {
                    midas_obs::obs_info!(
                        "core::framework",
                        "observability endpoints on http://{}",
                        server.addr()
                    );
                    Some(server)
                }
                Err(e) => {
                    midas_obs::obs_warn!(
                        "core::framework",
                        "failed to bind observability server on {addr}: {e}"
                    );
                    None
                }
            }
        } else {
            None
        };
        let _span = midas_obs::span!("bootstrap");
        let fct_state = FctState::build(&db, config.mining());
        let space = FeatureSpace::from_fct(&fct_state.lattice, config.sup_min, db.len());
        let clusters = ClusterSet::build(&db, &fct_state.lattice, space, config.clustering());
        let patterns = PatternStore::from_patterns(select_patterns(
            &clusters,
            &fct_state.edges,
            db.len(),
            &config.selection(),
        ));
        let monitor = GraphletMonitor::build(&db);
        let kernel = MatchKernel::with_matcher(config.threads, config.matcher);
        let (fct_index, ife_index) = build_indices(&db, &fct_state, &patterns, &config, &kernel);
        let mut midas = Midas {
            config,
            db,
            fct_state,
            clusters,
            monitor,
            fct_index,
            ife_index,
            patterns,
            kernel,
            batch_counter: 0,
            obs_server,
            published: Published::default(),
        };
        midas.publish_snapshot();
        midas.clusters.take_dirty(); // fresh clusters are not "modified"

        // Bootstrap mining floods the VF2 tail-latency reservoir with
        // one-time setup searches that carry no (pattern, graph)
        // attribution; the sentry watches steady-state maintenance, so
        // `/slow` starts fresh from the first batch.
        midas_obs::exemplar::series("vf2.search_ns", "ns").reset();
        Ok(midas)
    }

    /// The configuration.
    pub fn config(&self) -> &MidasConfig {
        &self.config
    }

    /// The bound address of the live observability endpoints, if
    /// [`TelemetryConfig::serve`] was set (e.g. via `MIDAS_SERVE`).
    pub fn obs_addr(&self) -> Option<std::net::SocketAddr> {
        self.obs_server.as_ref().map(|s| s.addr())
    }

    /// The current database.
    pub fn db(&self) -> &GraphDb {
        &self.db
    }

    /// The current canned pattern set.
    ///
    /// Routed through the published [`PatternSnapshot`] (not the mutable
    /// [`PatternStore`]), so every read path observes only complete,
    /// end-of-batch pattern sets.
    pub fn patterns(&self) -> Vec<LabeledGraph> {
        self.published.read().patterns.clone()
    }

    /// The latest published [`PatternSnapshot`]: the pattern set plus its
    /// epoch and the graphlet distribution at publish time. Cheap (`Arc`
    /// clone) and always a complete, immutable set.
    pub fn pattern_snapshot(&self) -> Arc<PatternSnapshot> {
        self.published.read()
    }

    /// A cloneable handle onto the published pattern snapshot, for reader
    /// threads that outlive any `&Midas` borrow (the closed-loop load
    /// harness's simulated users). Reads through the handle are never
    /// blocked by [`Midas::apply_batch`]: a batch assembles its new
    /// snapshot off to the side and swaps one `Arc` at the very end.
    pub fn snapshot_handle(&self) -> Published<PatternSnapshot> {
        self.published.clone()
    }

    /// Builds and publishes a fresh [`PatternSnapshot`] from the current
    /// store, monitor and batch counter.
    fn publish_snapshot(&self) {
        self.published.publish(PatternSnapshot {
            epoch: self.batch_counter,
            patterns: self.patterns.graphs(),
            graphlets: self.monitor.distribution(),
            db_len: self.db.len(),
            published_unix_ms: midas_obs::flight::unix_ms(),
        });
        midas_obs::counter_add!("patterns.published", 1);
        midas_obs::gauge_set!("patterns.snapshot_epoch", self.batch_counter as f64);
    }

    /// The maintained small-pattern strip (single frequent edges), empty
    /// unless `config.small_pattern_slots > 0`. Refreshed from the edge
    /// catalog, so it is always consistent with the current database —
    /// the η_min ≤ 2 maintenance of §3.1's Remark.
    pub fn small_patterns(&self) -> Vec<LabeledGraph> {
        crate::small_patterns::small_pattern_set(
            &self.fct_state.edges,
            self.config.small_pattern_slots,
        )
    }

    /// The pattern store (ids + graphs).
    pub fn pattern_store(&self) -> &PatternStore {
        &self.patterns
    }

    /// The cluster set.
    pub fn clusters(&self) -> &ClusterSet {
        &self.clusters
    }

    /// The FCT state (lattice + edge catalog).
    pub fn fct_state(&self) -> &FctState {
        &self.fct_state
    }

    /// The FCT-Index.
    pub fn fct_index(&self) -> &FctIndex {
        &self.fct_index
    }

    /// The IFE-Index.
    pub fn ife_index(&self) -> &IfeIndex {
        &self.ife_index
    }

    /// The parallel + memoized isomorphism kernel shared by every hot
    /// `(graph × pattern)` scan. Its cache is invalidated per graph as
    /// batches arrive, so answers are always current.
    pub fn kernel(&self) -> &MatchKernel {
        &self.kernel
    }

    /// Pattern-set quality over a fresh sample of the current database.
    pub fn quality(&self) -> SetQuality {
        let sample = self.sample();
        crate::metrics::quality_of_with(
            &self.kernel,
            &self.patterns.graphs(),
            &self.db,
            &self.fct_state.edges,
            &sample,
        )
    }

    fn sample(&self) -> BTreeSet<GraphId> {
        sample_database(
            &self.db,
            &self.clusters,
            self.config.sample_size,
            self.config.seed ^ self.batch_counter,
        )
    }

    /// Applies one batch update — Algorithm 1.
    pub fn apply_batch(&mut self, update: BatchUpdate) -> MaintenanceReport {
        self.apply_batch_with_strategy(update, SwapStrategy::MultiScan)
    }

    /// Applies a batch with an explicit swap strategy (the *Random*
    /// baseline reuses the entire pipeline with random swapping).
    pub fn apply_batch_with_strategy(
        &mut self,
        update: BatchUpdate,
        strategy: SwapStrategy,
    ) -> MaintenanceReport {
        let total_start = Instant::now();
        let telemetry_on = midas_obs::enabled();
        let baseline = if telemetry_on {
            MetricsSnapshot::capture()
        } else {
            MetricsSnapshot::default()
        };
        self.batch_counter += 1;

        // Ingest: apply ΔD and keep the graphlet monitor current.
        let ingest_span = midas_obs::span!("batch.ingest");
        let psi_before = self.monitor.distribution();

        // Capture Δ⁻ graphs before they leave the database.
        let deleted_graphs: Vec<(GraphId, Arc<LabeledGraph>)> = update
            .delete
            .iter()
            .filter_map(|&id| self.db.get(id).map(|g| (id, g.clone())))
            .collect();
        let (inserted, deleted_ids) = self.db.apply(update);
        midas_obs::counter_add!("batch.inserted", inserted.len() as u64);
        midas_obs::counter_add!("batch.deleted", deleted_ids.len() as u64);

        // Graphlet monitor (lines 3–4).
        for &id in &deleted_ids {
            self.monitor.remove_graph(id);
        }
        for &id in &inserted {
            self.monitor
                .add_graph(id, self.db.get(id).expect("inserted id"));
        }
        let psi_after = self.monitor.distribution();
        drop(ingest_span);

        // Every phase below runs fan-outs through the kernel; a worker panic
        // (including an injected `MIDAS_FAULT`) is contained here — the
        // failing phase is abandoned, later pattern-maintenance phases are
        // skipped, and the report carries the error instead of the process
        // aborting.
        let mut batch_error: Option<KernelError> = None;

        // FCT maintenance (line 5).
        let fct_span = midas_obs::span!("batch.fct");
        let fct_start = Instant::now();
        let deleted_refs: Vec<(GraphId, &LabeledGraph)> = deleted_graphs
            .iter()
            .map(|(id, g)| (*id, g.as_ref()))
            .collect();
        contain("batch.fct", &mut batch_error, || {
            self.fct_state
                .apply_batch(&self.db, &inserted, &deleted_refs);
        });
        let fct_time = fct_start.elapsed();
        drop(fct_span);
        midas_obs::alerts::record_phase("batch.fct", fct_time.as_micros() as u64);

        // Cluster + CSG maintenance (lines 1–2, 6–7).
        let cluster_span = midas_obs::span!("batch.cluster");
        let cluster_start = Instant::now();
        contain("batch.cluster", &mut batch_error, || {
            for (id, g) in &deleted_graphs {
                self.clusters.remove(*id, g);
            }
            for &id in &inserted {
                let graph = self.db.get(id).expect("inserted id").clone();
                self.clusters
                    .assign(&self.db, &self.fct_state.lattice, id, &graph);
            }
        });
        let clustering_time = cluster_start.elapsed();
        drop(cluster_span);
        midas_obs::alerts::record_phase("batch.cluster", clustering_time.as_micros() as u64);

        // Index maintenance (line 12 — we keep indices fresh every batch so
        // minor modifications leave them consistent too). The kernel passes
        // here are the fallible `try_*` fan-outs: a contained task panic
        // surfaces as a `KernelError` with the index left untouched.
        let index_span = midas_obs::span!("batch.index");
        let index_start = Instant::now();
        // Injected slowdown (`MIDAS_FAULT=slow:US`): burns wall-clock inside
        // this span so the SLO burn-rate alerts have a reproducible trigger.
        if let Some(us) = env_fault_slow_us() {
            std::thread::sleep(Duration::from_micros(us));
        }
        if let Some(Err(e)) = contain("batch.index", &mut batch_error, || {
            self.maintain_indices(&inserted, &deleted_ids)
        }) {
            record_kernel_error(&e);
            batch_error = Some(e);
        }
        let index_time = index_start.elapsed();
        drop(index_span);
        midas_obs::alerts::record_phase("batch.index", index_time.as_micros() as u64);

        // Classification (line 8).
        let classify_span = midas_obs::span!("batch.classify");
        let (kind, distance) = classify(&psi_before, &psi_after, self.config.epsilon);
        drop(classify_span);
        midas_obs::obs_info!(
            "core::framework",
            "batch {}: {kind:?} modification, drift {distance:.6} (ε = {})",
            self.batch_counter,
            self.config.epsilon
        );
        let mut candidate_time = Duration::ZERO;
        let mut swap_time = Duration::ZERO;
        let mut candidates_generated = 0;
        let mut swaps = 0;
        if kind == Modification::Major && !self.patterns.is_empty() && batch_error.is_none() {
            contain("batch.maintenance", &mut batch_error, || {
                // Candidate generation from dirty CSGs (§5, lines 9–10).
                let candidates_span = midas_obs::span!("batch.candidates");
                let cand_start = Instant::now();
                let dirty = self.clusters.take_dirty();
                let sample = self.sample();
                // The swap step mutates the indices' pattern columns while the
                // scoring context reads feature rows; a snapshot keeps borrows
                // disjoint (feature rows do not change during swapping).
                let fct_snapshot = self.fct_index.clone();
                let ife_snapshot = self.ife_index.clone();
                let ctx = ScovContext {
                    fct: &fct_snapshot,
                    ife: &ife_snapshot,
                    db: &self.db,
                    sample: &sample,
                    catalog: &self.fct_state.edges,
                    kernel: Some(&self.kernel),
                };
                let csgs: Vec<WeightedCsg> = dirty
                    .iter()
                    .filter_map(|&cid| self.clusters.get(cid))
                    .map(|c| WeightedCsg::build(c.csg(), &self.fct_state.edges, self.db.len()))
                    .collect();
                let state = coverage_state(&self.patterns, &ctx);
                let params = GenerationParams {
                    budget: self.config.budget,
                    walks: self.config.walks,
                    walk_length: self.config.walk_length,
                    seeds_per_size: self.config.seeds_per_size,
                    kappa: self.config.kappa,
                };
                let mut rng = StdRng::seed_from_u64(self.config.seed ^ (self.batch_counter << 16));
                let candidates = generate_promising_candidates(
                    &csgs,
                    &self.patterns,
                    &ctx,
                    &state,
                    &params,
                    &mut rng,
                );
                candidates_generated = candidates.len();
                candidate_time = cand_start.elapsed();
                drop(candidates_span);
                midas_obs::alerts::record_phase(
                    "batch.candidates",
                    candidate_time.as_micros() as u64,
                );
                midas_obs::counter_add!("batch.candidates_generated", candidates_generated as u64);

                // Swapping (§6).
                let swap_span = midas_obs::span!("batch.swap");
                let swap_start = Instant::now();
                swaps = match strategy {
                    SwapStrategy::MultiScan => {
                        let outcome = multi_scan_swap(
                            &mut self.patterns,
                            candidates,
                            &ctx,
                            &SwapParams {
                                kappa: self.config.kappa,
                                lambda: self.config.lambda,
                                ks_alpha: self.config.ks_alpha,
                                ..SwapParams::default()
                            },
                            &mut self.fct_index,
                            &mut self.ife_index,
                        );
                        outcome.swaps
                    }
                    SwapStrategy::Random => self.random_swap(candidates, &mut rng),
                };
                swap_time = swap_start.elapsed();
                drop(swap_span);
                midas_obs::alerts::record_phase("batch.swap", swap_time.as_micros() as u64);
                midas_obs::counter_add!("batch.swaps", swaps as u64);
                midas_obs::obs_info!(
                    "core::framework",
                    "batch {}: {candidates_generated} candidates, {swaps} swaps",
                    self.batch_counter
                );
            });
        }
        // On a minor modification the dirty flags are deliberately *kept*:
        // clusters stay marked as modified until the next major round
        // consumes them, so candidate generation sees every cluster that
        // changed since patterns were last maintained (§4.3, §5).

        // Publish the post-batch pattern snapshot before reporting: even a
        // contained phase failure publishes (the store holds whatever state
        // the batch reached — always a complete set, swaps are per-pattern
        // atomic), so concurrent readers converge on the current epoch.
        self.publish_snapshot();

        let pattern_maintenance_time = total_start.elapsed();
        midas_obs::counter_add!("pmt_us", pattern_maintenance_time.as_micros() as u64);
        midas_obs::counter_add!("pgt_us", (candidate_time + swap_time).as_micros() as u64);
        // Flight recorder: always-on (bounded ring, one short lock), so a
        // post-mortem dump has the last batches even when metrics are off.
        midas_obs::flight::record_batch(midas_obs::BatchSummary {
            seq: self.batch_counter,
            kind: match kind {
                Modification::Major => "major",
                Modification::Minor => "minor",
            },
            distance,
            pmt_us: pattern_maintenance_time.as_micros() as u64,
            pgt_us: (candidate_time + swap_time).as_micros() as u64,
            inserted: inserted.len(),
            deleted: deleted_ids.len(),
            candidates: candidates_generated,
            swaps,
            unix_ms: midas_obs::flight::unix_ms(),
        });
        let telemetry = if telemetry_on {
            let snap = MetricsSnapshot::capture().since(&baseline);
            if midas_obs::tracing_enabled() {
                let path = TelemetryConfig::trace_path();
                match midas_obs::trace::write_trace(&path) {
                    Ok(n) => midas_obs::obs_debug!(
                        "core::framework",
                        "wrote {n} trace events to {}",
                        path.display()
                    ),
                    Err(e) => midas_obs::obs_warn!(
                        "core::framework",
                        "failed to write trace to {}: {e}",
                        path.display()
                    ),
                }
            }
            snap
        } else {
            MetricsSnapshot::default()
        };

        MaintenanceReport {
            kind: match kind {
                Modification::Major => ModificationKind::Major,
                Modification::Minor => ModificationKind::Minor,
            },
            distance,
            pattern_maintenance_time,
            clustering_time,
            fct_time,
            index_time,
            candidate_time,
            swap_time,
            candidates_generated,
            swaps,
            telemetry,
            error: batch_error,
        }
    }

    /// The *Random* baseline's swap step: each candidate replaces a
    /// uniformly random pattern, no criteria checked.
    fn random_swap(&mut self, candidates: Vec<LabeledGraph>, rng: &mut StdRng) -> usize {
        use rand::RngExt;
        let mut swaps = 0;
        for candidate in candidates {
            if self.patterns.is_empty() {
                break;
            }
            let ids: Vec<PatternId> = self.patterns.iter().map(|(id, _)| id).collect();
            let victim = ids[rng.random_range(0..ids.len())];
            self.patterns.remove(victim);
            self.fct_index.remove_pattern(victim);
            self.ife_index.remove_pattern(victim);
            if let Some(new_id) = self.patterns.insert(candidate.clone()) {
                self.fct_index.add_pattern(new_id, &candidate);
                self.ife_index.add_pattern(new_id, &candidate);
                swaps += 1;
            }
        }
        swaps
    }

    /// Refreshes both indices after a batch: graph columns for `Δ⁺`/`Δ⁻`
    /// and feature rows against the current FCT ∪ frequent-edge set. The
    /// embedding cache is invalidated per touched graph first, then the
    /// inserted TG columns are filled in one parallel kernel pass.
    ///
    /// Runs every kernel fan-out through the fault-isolating `try_*` twins:
    /// a contained worker panic returns the [`KernelError`] with the failed
    /// kernel pass never applied to the index.
    fn maintain_indices(
        &mut self,
        inserted: &[GraphId],
        deleted: &[GraphId],
    ) -> Result<(), KernelError> {
        for &id in deleted.iter().chain(inserted) {
            self.kernel.invalidate_graph(id);
        }
        for &id in deleted {
            self.fct_index.remove_graph(id);
            self.ife_index.remove_graph(id);
        }
        let inserted_graphs: Vec<(GraphId, Arc<LabeledGraph>)> = inserted
            .iter()
            .map(|&id| (id, self.db.get(id).expect("inserted id").clone()))
            .collect();
        let inserted_refs: Vec<(GraphId, &LabeledGraph)> = inserted_graphs
            .iter()
            .map(|(id, g)| (*id, g.as_ref()))
            .collect();
        self.fct_index
            .try_add_graphs_kernel(&self.kernel, &inserted_refs)?;
        for (id, graph) in &inserted_graphs {
            self.ife_index.add_graph(*id, graph);
        }
        // Feature rows: FCT ∪ E_freq (Def. 5.1); IFE rows: E_inf (Def. 5.2).
        let db_len = self.db.len();
        let fct_trees: Vec<(TreeKey, LabeledGraph)> = self
            .fct_state
            .fct(db_len)
            .into_iter()
            .map(|(k, e)| (k.clone(), e.tree.clone()))
            .collect();
        let freq_edges: Vec<(TreeKey, LabeledGraph)> = self
            .fct_state
            .edges
            .frequent(self.config.sup_min, db_len)
            .into_iter()
            .map(|(label, _)| {
                let tree = midas_mining::canonical::edge_tree(label.0, label.1);
                (midas_mining::tree_key(&tree), tree)
            })
            .collect();
        let mut target: Vec<(TreeKey, &LabeledGraph)> = Vec::new();
        for (k, t) in fct_trees.iter().chain(freq_edges.iter()) {
            if !target.iter().any(|(existing, _)| existing == k) {
                target.push((k.clone(), t));
            }
        }
        let graph_refs: Vec<(GraphId, &LabeledGraph)> =
            self.db.iter().map(|(id, g)| (id, g.as_ref())).collect();
        let pattern_refs: Vec<(PatternId, &LabeledGraph)> = self.patterns.iter().collect();
        self.fct_index.try_refresh_features_kernel(
            &self.kernel,
            &target,
            &graph_refs,
            &pattern_refs,
        )?;
        let infrequent: BTreeSet<midas_graph::EdgeLabel> = self
            .fct_state
            .edges
            .infrequent(self.config.sup_min, db_len)
            .into_iter()
            .map(|(label, _)| label)
            .collect();
        self.ife_index.refresh_edges(
            infrequent,
            graph_refs.iter().copied(),
            pattern_refs.iter().copied(),
        );
        Ok(())
    }
}

/// `MIDAS_FAULT=slow:US` — injected per-batch slowdown in microseconds,
/// burned inside the `batch.index` span. The variable is shared with the
/// kernel's panic injector (`MIDAS_FAULT=task:N`); each consumer parses
/// only its own prefix, so the two faults are mutually exclusive by
/// construction. Read fresh on every batch (no caching) so tests and
/// operators can arm/disarm it mid-process.
fn env_fault_slow_us() -> Option<u64> {
    std::env::var("MIDAS_FAULT")
        .ok()
        .as_deref()
        .and_then(|s| s.trim().strip_prefix("slow:"))
        .and_then(|n| n.trim().parse::<u64>().ok())
        .filter(|&us| us > 0)
}

/// Logs a contained worker failure to telemetry and the flight recorder.
fn record_kernel_error(e: &KernelError) {
    midas_obs::counter_add!("batch.kernel_errors", 1);
    midas_obs::obs_warn!("core::framework", "contained worker failure: {e}");
    midas_obs::flight::record_event("kernel_error", e.to_string());
}

/// Runs one maintenance phase under a panic backstop. A panic that escapes
/// an infallible fan-out (or any phase-internal bug) is converted into a
/// phase-level [`KernelError`] instead of unwinding out of `apply_batch`;
/// once a batch has failed, later phases are skipped (`None`).
fn contain<R>(
    phase: &'static str,
    error: &mut Option<KernelError>,
    f: impl FnOnce() -> R,
) -> Option<R> {
    if error.is_some() {
        return None;
    }
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(result) => Some(result),
        Err(payload) => {
            let e = KernelError {
                task: KernelError::PHASE,
                message: format!("{phase}: {}", midas_graph::exec::panic_message(payload)),
            };
            record_kernel_error(&e);
            *error = Some(e);
            None
        }
    }
}

/// Which swap step to run on a major modification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapStrategy {
    /// MIDAS's multi-scan swap (§6.2).
    MultiScan,
    /// The *Random* baseline: candidates replace random patterns.
    Random,
}

fn build_indices(
    db: &GraphDb,
    fct_state: &FctState,
    patterns: &PatternStore,
    config: &MidasConfig,
    kernel: &MatchKernel,
) -> (FctIndex, IfeIndex) {
    let db_len = db.len();
    let graph_refs: Vec<(GraphId, &LabeledGraph)> =
        db.iter().map(|(id, g)| (id, g.as_ref())).collect();
    let pattern_refs: Vec<(PatternId, &LabeledGraph)> = patterns.iter().collect();
    let fct_trees: Vec<(TreeKey, LabeledGraph)> = fct_state
        .fct(db_len)
        .into_iter()
        .map(|(k, e)| (k.clone(), e.tree.clone()))
        .collect();
    let freq_edges: Vec<(TreeKey, LabeledGraph)> = fct_state
        .edges
        .frequent(config.sup_min, db_len)
        .into_iter()
        .map(|(label, _)| {
            let tree = midas_mining::canonical::edge_tree(label.0, label.1);
            (midas_mining::tree_key(&tree), tree)
        })
        .collect();
    let mut seen = BTreeSet::new();
    let mut features: Vec<(TreeKey, LabeledGraph)> = Vec::new();
    for (k, t) in fct_trees.into_iter().chain(freq_edges) {
        if seen.insert(k.clone()) {
            features.push((k, t));
        }
    }
    let fct_index = FctIndex::build_with(kernel, features, &graph_refs, &pattern_refs);
    let infrequent: BTreeSet<midas_graph::EdgeLabel> = fct_state
        .edges
        .infrequent(config.sup_min, db_len)
        .into_iter()
        .map(|(label, _)| label)
        .collect();
    let ife_index = IfeIndex::build(
        infrequent,
        graph_refs.iter().copied(),
        pattern_refs.iter().copied(),
    );
    (fct_index, ife_index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_graph::GraphBuilder;

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    fn seed_db() -> GraphDb {
        // C-O-N-C chains with some variety; big enough to mine and select.
        GraphDb::from_graphs((0..10).map(|i| path(&[0, 1, 2, 0, (i % 2) as u32])))
    }

    fn config() -> MidasConfig {
        MidasConfig::small_defaults()
    }

    #[test]
    fn bootstrap_selects_initial_patterns() {
        let midas = Midas::bootstrap(seed_db(), config()).unwrap();
        assert!(!midas.patterns().is_empty());
        assert!(midas.patterns().len() <= config().budget.gamma);
        for p in midas.patterns() {
            assert!(p.is_connected());
        }
        assert!(midas.fct_index().feature_count() > 0);
    }

    #[test]
    fn bootstrap_rejects_empty_db() {
        assert!(Midas::bootstrap(GraphDb::new(), config()).is_err());
    }

    #[test]
    fn minor_modification_keeps_patterns() {
        let mut midas = Midas::bootstrap(seed_db(), config()).unwrap();
        let before = midas.patterns();
        // Insert more graphs of the same shape: graphlet drift ~ 0.
        let update = BatchUpdate::insert_only(vec![path(&[0, 1, 2, 0, 0]), path(&[0, 1, 2, 0, 1])]);
        let report = midas.apply_batch(update);
        assert_eq!(
            report.kind,
            ModificationKind::Minor,
            "d = {}",
            report.distance
        );
        assert_eq!(midas.patterns(), before);
        assert_eq!(report.swaps, 0);
        // But the substrate was maintained.
        assert_eq!(midas.db().len(), 12);
        assert_eq!(midas.clusters().total_members(), 12);
    }

    #[test]
    fn major_modification_triggers_pattern_maintenance() {
        let mut midas = Midas::bootstrap(seed_db(), config()).unwrap();
        // A novel dense family: triangles of S.
        let triangle = GraphBuilder::new()
            .vertices(&[3, 3, 3, 3])
            .path(&[0, 1, 2, 3])
            .edge(0, 2)
            .edge(1, 3)
            .edge(0, 3)
            .build();
        let update = BatchUpdate::insert_only(vec![triangle; 12]);
        let report = midas.apply_batch(update);
        assert_eq!(
            report.kind,
            ModificationKind::Major,
            "d = {}",
            report.distance
        );
        // Candidate generation ran (swaps may or may not pass criteria).
        assert!(report.pattern_maintenance_time >= report.pattern_generation_time());
    }

    #[test]
    fn quality_never_degrades_across_major_batches() {
        let mut midas = Midas::bootstrap(seed_db(), config()).unwrap();
        let before = midas.quality();
        let novel: Vec<LabeledGraph> = (0..14).map(|_| path(&[3, 4, 3, 4, 3])).collect();
        let report = midas.apply_batch(BatchUpdate::insert_only(novel));
        let after = midas.quality();
        if report.swaps > 0 {
            // sw1–sw5 are sample-relative; the invariant we can assert
            // globally is that diversity and cognitive load did not worsen.
            assert!(after.div >= before.div - 1e-9);
            assert!(after.cog <= before.cog + 1e-9);
        }
        assert_eq!(midas.patterns().len(), midas.pattern_store().len());
    }

    #[test]
    fn deletion_batches_are_handled() {
        let mut midas = Midas::bootstrap(seed_db(), config()).unwrap();
        let victim = midas.db().ids().next().unwrap();
        let report = midas.apply_batch(BatchUpdate::delete_only(vec![victim]));
        assert_eq!(midas.db().len(), 9);
        assert!(!midas.db().contains(victim));
        assert_eq!(midas.clusters().total_members(), 9);
        let _ = report;
    }

    #[test]
    fn random_strategy_swaps_without_criteria() {
        let mut midas = Midas::bootstrap(seed_db(), config()).unwrap();
        let novel: Vec<LabeledGraph> = (0..14).map(|_| path(&[3, 4, 3, 4, 3])).collect();
        let report =
            midas.apply_batch_with_strategy(BatchUpdate::insert_only(novel), SwapStrategy::Random);
        // With candidates present, random swapping must swap.
        if report.candidates_generated > 0 {
            assert!(report.swaps > 0);
        }
    }

    #[test]
    fn small_pattern_strip_tracks_the_catalog() {
        let mut cfg = config();
        cfg.small_pattern_slots = 3;
        let mut midas = Midas::bootstrap(seed_db(), cfg).unwrap();
        let strip = midas.small_patterns();
        assert_eq!(strip.len(), 3);
        assert!(strip.iter().all(|p| p.edge_count() == 1));
        // A wave of S-S edges must surface in the strip after maintenance.
        let wave: Vec<LabeledGraph> = (0..30).map(|_| path(&[3, 3, 3])).collect();
        midas.apply_batch(BatchUpdate::insert_only(wave));
        let strip = midas.small_patterns();
        assert!(
            strip.iter().any(|p| p.sorted_labels() == vec![3, 3]),
            "S-S should rank into the refreshed strip: {strip:?}"
        );
        // Disabled by default.
        let plain = Midas::bootstrap(seed_db(), config()).unwrap();
        assert!(plain.small_patterns().is_empty());
    }

    #[test]
    fn published_snapshot_tracks_batches() {
        let mut midas = Midas::bootstrap(seed_db(), config()).unwrap();
        let s0 = midas.pattern_snapshot();
        assert_eq!(s0.epoch, 0);
        assert_eq!(s0.patterns, midas.patterns());
        assert_eq!(s0.db_len, 10);
        let handle = midas.snapshot_handle();
        midas.apply_batch(BatchUpdate::insert_only(vec![path(&[0, 1, 2])]));
        let s1 = handle.read();
        assert_eq!(s1.epoch, 1);
        assert_eq!(s1.patterns, midas.patterns());
        assert_eq!(s1.db_len, 11);
        // The held pre-batch snapshot is immutable.
        assert_eq!(s0.epoch, 0);
        assert_eq!(s0.batches_behind(&s1), 1);
    }

    // Enabled-telemetry behavior (phase spans, pmt_us, snapshot deltas) is
    // exercised in the `midas-tests` integration binary: the enable flag is
    // process-global, and unit tests here bootstrap concurrently with
    // default (disabled) configs, which would race with it.

    #[test]
    fn telemetry_disabled_report_is_empty() {
        let mut midas = Midas::bootstrap(seed_db(), config()).unwrap();
        let report = midas.apply_batch(BatchUpdate::insert_only(vec![path(&[0, 1, 2])]));
        assert!(report.telemetry.is_empty());
    }

    #[test]
    fn reports_time_phases_nest() {
        let mut midas = Midas::bootstrap(seed_db(), config()).unwrap();
        let report = midas.apply_batch(BatchUpdate::insert_only(vec![path(&[0, 1, 2])]));
        let parts = report.clustering_time
            + report.fct_time
            + report.index_time
            + report.candidate_time
            + report.swap_time;
        assert!(report.pattern_maintenance_time >= parts.saturating_sub(Duration::from_millis(1)));
    }
}
