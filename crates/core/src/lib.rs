//! # midas-core
//!
//! MIDAS — **M**a**I**ntenance of canne**D** p**A**ttern**S** — the
//! end-to-end framework of Huang et al., *MIDAS: Towards Efficient and
//! Effective Maintenance of Canned Patterns in Visual Graph Query
//! Interfaces* (SIGMOD 2021).
//!
//! Given a graph database `D` with a canned pattern set `P` on a visual
//! query interface, MIDAS maintains `P` as `D` evolves through batch
//! updates `ΔD`, guaranteeing the refreshed set keeps high coverage and
//! diversity without raising cognitive load (Def. 3.1):
//!
//! * [`monitor`] — graphlet-frequency drift classifies each batch as a
//!   *major* or *minor* modification (§3.4);
//! * [`framework`] — [`Midas`] implements Algorithm 1: cluster and CSG
//!   maintenance always run; pattern maintenance runs only on major
//!   modifications;
//! * [`candidate_gen`] — pruning-based candidate generation with the
//!   marginal-coverage early-termination test (Eq. 2, Def. 5.5);
//! * [`swap`] — the multi-scan swap with criteria **sw1–sw5**, the
//!   Kolmogorov–Smirnov size-distribution guard, and the `SWAP_α`
//!   κ-schedule (Lemma 6.3);
//! * [`baselines`] — the paper's comparison points: *NoMaintain*, *Random*
//!   swapping, and maintenance-from-scratch via CATAPULT / CATAPULT++;
//! * [`metrics`] — pattern-set quality and maintenance-time reporting used
//!   by every experiment in §7.
//!
//! ## Quick start
//!
//! ```
//! use midas_core::{Midas, MidasConfig};
//! use midas_graph::{BatchUpdate, GraphBuilder, GraphDb};
//!
//! // A toy database of C-O-N molecules (labels are interned ids).
//! let db = GraphDb::from_graphs((0..8).map(|_| {
//!     GraphBuilder::new().vertices(&[0, 1, 2, 0]).path(&[0, 1, 2, 3]).build()
//! }));
//! let mut midas = Midas::bootstrap(db, MidasConfig::small_defaults()).unwrap();
//! let before = midas.patterns().to_vec();
//!
//! // Evolve the database; MIDAS decides whether patterns need refreshing.
//! let update = BatchUpdate::insert_only(vec![
//!     GraphBuilder::new().vertices(&[3, 3, 3, 3]).path(&[0, 1, 2, 3]).build(),
//! ]);
//! let report = midas.apply_batch(update);
//! assert!(report.pattern_maintenance_time >= std::time::Duration::ZERO);
//! let _ = before;
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baselines;
pub mod candidate_gen;
pub mod config;
pub mod framework;
pub mod ks;
pub mod metrics;
pub mod monitor;
pub mod patterns;
pub mod published;
pub mod query_log;
pub mod sampling;
pub mod small_patterns;
pub mod swap;

pub use config::MidasConfig;
pub use framework::{MaintenanceReport, Midas, ModificationKind};
pub use metrics::quality_of;
pub use patterns::PatternStore;
pub use published::{PatternSnapshot, Published};
