//! Pruning-based candidate generation (§5.2).
//!
//! Candidate FCPs are grown exactly as in CATAPULT (most-traversed-edge
//! extension on weighted CSGs), but MIDAS interposes the coverage-based
//! early-termination test of Eq. 2 before each extension: when the next
//! edge's *marginal* subgraph coverage (graphs it reaches that the current
//! pattern set does not) falls below `(1 + κ)` times the smallest exclusive
//! coverage of any existing pattern, the candidate cannot become a
//! *promising FCP* (Def. 5.5) and generation stops.

use crate::metrics::ScovContext;
use crate::patterns::PatternStore;
use midas_catapult::candidates::generate_candidates;
use midas_catapult::random_walk::random_walks;
use midas_catapult::{PatternBudget, WeightedCsg};
use midas_graph::canonical::canonical_code;
use midas_graph::{GraphId, LabeledGraph};
use rand::rngs::StdRng;
use std::collections::{BTreeMap, BTreeSet};

/// Coverage bookkeeping for the current pattern set over the sample.
#[derive(Debug, Clone, Default)]
pub struct CoverageState {
    /// `⋃_{p ∈ P} G_scov(p)` over the sample.
    pub covered_union: BTreeSet<GraphId>,
    /// Per pattern: `|G_scov(p) \ ⋃_{p' ≠ p} G_scov(p')|`.
    pub exclusive: BTreeMap<midas_index::PatternId, usize>,
    /// The minimum exclusive coverage across patterns (0 when `P` is
    /// empty — every candidate is then promising).
    pub min_exclusive: usize,
}

/// Computes the coverage state of `store` over the sample.
pub fn coverage_state(store: &PatternStore, ctx: &ScovContext<'_>) -> CoverageState {
    let per_pattern: Vec<(midas_index::PatternId, BTreeSet<GraphId>)> =
        store.iter().map(|(id, p)| (id, ctx.covered(p))).collect();
    let mut covered_union = BTreeSet::new();
    for (_, covered) in &per_pattern {
        covered_union.extend(covered.iter().copied());
    }
    let mut exclusive = BTreeMap::new();
    for (id, covered) in &per_pattern {
        let others: BTreeSet<GraphId> = per_pattern
            .iter()
            .filter(|(other, _)| other != id)
            .flat_map(|(_, c)| c.iter().copied())
            .collect();
        exclusive.insert(*id, covered.difference(&others).count());
    }
    let min_exclusive = exclusive.values().copied().min().unwrap_or(0);
    CoverageState {
        covered_union,
        exclusive,
        min_exclusive,
    }
}

/// Generation parameters (a slice of [`crate::MidasConfig`]).
#[derive(Debug, Clone, Copy)]
pub struct GenerationParams {
    /// Pattern budget.
    pub budget: PatternBudget,
    /// Walks per CSG.
    pub walks: usize,
    /// Steps per walk.
    pub walk_length: usize,
    /// Seed ranks per (CSG, size).
    pub seeds_per_size: usize,
    /// The swapping threshold `κ` of Eq. 2 / Def. 5.5.
    pub kappa: f64,
}

/// Generates promising FCPs from the given weighted CSGs with Eq. 2
/// pruning, deduplicated up to isomorphism and against the current pattern
/// set.
pub fn generate_promising_candidates(
    csgs: &[WeightedCsg],
    store: &PatternStore,
    ctx: &ScovContext<'_>,
    state: &CoverageState,
    params: &GenerationParams,
    rng: &mut StdRng,
) -> Vec<LabeledGraph> {
    let threshold = ((1.0 + params.kappa) * state.min_exclusive as f64).ceil() as usize;
    let mut out = Vec::new();
    let mut codes = BTreeSet::new();
    for csg in csgs {
        let stats = random_walks(csg, params.walks, params.walk_length, rng);
        for size in params.budget.eta_min..=params.budget.eta_max {
            // Eq. 2 hook: veto extensions whose edge has low marginal
            // coverage. The edge's coverage set comes from the edge
            // catalog through the context.
            let mut hook = |_partial: &[(u32, u32)], next: (u32, u32)| {
                let label = csg.graph.edge_label(next.0, next.1);
                let marginal = ctx.catalog.get(label).map_or(0, |stats| {
                    stats
                        .support
                        .iter()
                        .filter(|id| ctx.sample.contains(id) && !state.covered_union.contains(id))
                        .count()
                });
                marginal >= threshold
            };
            for candidate in
                generate_candidates(csg, &stats, size, params.seeds_per_size, &mut hook)
            {
                if store.contains_isomorphic(&candidate) {
                    continue;
                }
                // Promising-FCP test (Def. 5.5): the candidate's marginal
                // coverage must reach (1 + κ) × the smallest exclusive
                // coverage of an existing pattern.
                let marginal = ctx
                    .covered(&candidate)
                    .difference(&state.covered_union)
                    .count();
                if marginal < threshold {
                    continue;
                }
                let code = canonical_code(&candidate);
                if codes.insert(code) {
                    out.push(candidate);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_graph::{ClosureGraph, GraphBuilder, GraphDb};
    use midas_index::{FctIndex, IfeIndex, PatternId};
    use midas_mining::EdgeCatalog;
    use rand::SeedableRng;

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    struct World {
        db: GraphDb,
        fct: FctIndex,
        ife: IfeIndex,
        catalog: EdgeCatalog,
        sample: BTreeSet<GraphId>,
    }

    fn world(graphs: Vec<LabeledGraph>) -> World {
        let db = GraphDb::from_graphs(graphs);
        let refs: Vec<(GraphId, &LabeledGraph)> =
            db.iter().map(|(id, g)| (id, g.as_ref())).collect();
        let fct = FctIndex::build(
            std::iter::empty::<(midas_mining::TreeKey, &LabeledGraph)>(),
            refs.iter().copied(),
            std::iter::empty::<(PatternId, &LabeledGraph)>(),
        );
        let ife = IfeIndex::build(
            BTreeSet::new(),
            refs.iter().copied(),
            std::iter::empty::<(PatternId, &LabeledGraph)>(),
        );
        let catalog = EdgeCatalog::build(refs.iter().copied());
        let sample: BTreeSet<GraphId> = db.ids().collect();
        World {
            db,
            fct,
            ife,
            catalog,
            sample,
        }
    }

    fn ctx<'a>(w: &'a World) -> ScovContext<'a> {
        ScovContext {
            fct: &w.fct,
            ife: &w.ife,
            db: &w.db,
            sample: &w.sample,
            catalog: &w.catalog,
            kernel: None,
        }
    }

    fn csg_of(db: &GraphDb, catalog: &EdgeCatalog) -> WeightedCsg {
        let closure = ClosureGraph::from_graphs(db.iter().map(|(id, g)| (id, g.as_ref())));
        WeightedCsg::build(&closure, catalog, db.len())
    }

    fn params(kappa: f64) -> GenerationParams {
        GenerationParams {
            budget: PatternBudget {
                eta_min: 2,
                eta_max: 3,
                gamma: 4,
            },
            walks: 50,
            walk_length: 10,
            seeds_per_size: 2,
            kappa,
        }
    }

    #[test]
    fn coverage_state_exclusive_counts() {
        let w = world(vec![
            path(&[0, 1, 2]), // covered by both P1 and P2
            path(&[0, 1]),    // only P1
            path(&[1, 2]),    // only P2
            path(&[5, 5]),    // uncovered
        ]);
        let mut store = PatternStore::new();
        let p1 = store.insert(path(&[0, 1])).unwrap();
        let p2 = store.insert(path(&[1, 2])).unwrap();
        let c = ctx(&w);
        let state = coverage_state(&store, &c);
        assert_eq!(state.covered_union.len(), 3);
        assert_eq!(state.exclusive[&p1], 1);
        assert_eq!(state.exclusive[&p2], 1);
        assert_eq!(state.min_exclusive, 1);
    }

    #[test]
    fn empty_pattern_set_makes_everything_promising() {
        let w = world(vec![path(&[0, 1, 2, 0]), path(&[0, 1, 2, 0])]);
        let store = PatternStore::new();
        let c = ctx(&w);
        let state = coverage_state(&store, &c);
        assert_eq!(state.min_exclusive, 0);
        let csg = csg_of(&w.db, &w.catalog);
        let mut rng = StdRng::seed_from_u64(1);
        let candidates =
            generate_promising_candidates(&[csg], &store, &c, &state, &params(0.1), &mut rng);
        assert!(!candidates.is_empty());
    }

    #[test]
    fn candidates_isomorphic_to_existing_patterns_are_dropped() {
        let w = world(vec![path(&[0, 1, 2]), path(&[0, 1, 2])]);
        let mut store = PatternStore::new();
        store.insert(path(&[0, 1, 2])).unwrap(); // the only size-2 FCP
        let c = ctx(&w);
        let state = coverage_state(&store, &c);
        let csg = csg_of(&w.db, &w.catalog);
        let mut rng = StdRng::seed_from_u64(2);
        let candidates =
            generate_promising_candidates(&[csg], &store, &c, &state, &params(0.0), &mut rng);
        assert!(
            candidates.iter().all(|p| p.edge_count() != 2
                || !midas_graph::canonical::are_isomorphic(p, &path(&[0, 1, 2]))),
            "existing pattern must not reappear"
        );
    }

    #[test]
    fn low_marginal_coverage_prunes_candidates() {
        // Pattern already covers every graph: no candidate can be promising.
        let w = world(vec![path(&[0, 1, 2]), path(&[0, 1, 2, 0])]);
        let mut store = PatternStore::new();
        store.insert(path(&[0, 1])).unwrap(); // C-O covers everything
        let c = ctx(&w);
        let state = coverage_state(&store, &c);
        assert_eq!(state.covered_union.len(), 2);
        assert!(state.min_exclusive >= 1);
        let csg = csg_of(&w.db, &w.catalog);
        let mut rng = StdRng::seed_from_u64(3);
        let candidates =
            generate_promising_candidates(&[csg], &store, &c, &state, &params(0.1), &mut rng);
        assert!(
            candidates.is_empty(),
            "no marginal coverage left: {candidates:?}"
        );
    }

    #[test]
    fn uncovered_region_yields_promising_candidates() {
        // P covers the C-O family (3 graphs, so min exclusive coverage is 3
        // and the Def. 5.5 bar is ⌈1.1 · 3⌉ = 4); the S family is uncovered
        // and large enough (6 graphs) for an S-chain candidate to clear it.
        let mut graphs = vec![path(&[0, 1]); 3];
        graphs.extend(vec![path(&[3, 3, 3]); 6]);
        let w = world(graphs);
        let mut store = PatternStore::new();
        store.insert(path(&[0, 1])).unwrap();
        let c = ctx(&w);
        let state = coverage_state(&store, &c);
        let csg = csg_of(&w.db, &w.catalog);
        let mut rng = StdRng::seed_from_u64(4);
        let candidates =
            generate_promising_candidates(&[csg], &store, &c, &state, &params(0.1), &mut rng);
        assert!(
            candidates.iter().any(|p| p.sorted_labels().contains(&3)),
            "S-family candidate expected: {candidates:?}"
        );
    }
}
