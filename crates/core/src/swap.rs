//! Swap-based pattern maintenance: the multi-scan swap of §6.2.
//!
//! Candidates (descending `s'_p`) are matched against existing patterns
//! (ascending `s'_p`). A swap happens only when **all** criteria hold:
//!
//! * **sw1** `S_B(p_c) ≥ (1 + κ) · S_L(p)` — benefit beats loss
//!   (Def. 6.2 reduces both to the respective subgraph coverages);
//! * **sw2** `s'_{p_c} ≥ (1 + λ) · s'_p` — score dominance; a failure here
//!   terminates the scan (candidates are sorted, nothing later can pass);
//! * **sw3** diversity does not drop; **sw4** cognitive load does not rise;
//!   **sw5** label coverage does not drop;
//! * the pattern-size distributions of `P` and `P'` pass the KS guard.
//!
//! Scans repeat with the `SWAP_α` κ-schedule (Lemma 6.3): starting from
//! `σ₀ = 0.25`, scan `t` uses `κ_t = 1 − 2σ_{t−1}` and improves the bound
//! to `σ_t = 0.25 / (1 − σ_{t−1})`, stopping once `σ ≥ 0.5`, candidates run
//! out, or a scan makes no swap. The first scan uses the configured `κ`.

use crate::ks::distributions_similar;
use crate::metrics::ScovContext;
use crate::patterns::PatternStore;
use midas_catapult::score::diversity;
use midas_graph::{GraphId, LabeledGraph};
use midas_index::{FctIndex, IfeIndex, PatternId};
use std::collections::BTreeSet;

/// Swap parameters.
#[derive(Debug, Clone, Copy)]
pub struct SwapParams {
    /// Benefit/loss threshold `κ` (sw1) for the first scan.
    pub kappa: f64,
    /// Score threshold `λ` (sw2); the paper sets `λ = κ`.
    pub lambda: f64,
    /// KS significance level for the size-distribution guard.
    pub ks_alpha: f64,
    /// Optional stricter user requirement on diversity (§6.2):
    /// `f_div(P') ≥ (1 + α₁) · f_div(P)`. Zero recovers sw3.
    pub alpha_div: f64,
    /// Optional stricter requirement on cognitive load:
    /// `f_cog(P) · (1 + α₂) ≥ f_cog(P')`. Zero recovers sw4.
    pub alpha_cog: f64,
    /// Optional stricter requirement on label coverage:
    /// `f_lcov(P') ≥ (1 + α₃) · f_lcov(P)`. Zero recovers sw5.
    pub alpha_lcov: f64,
}

impl Default for SwapParams {
    /// Paper defaults: `κ = λ = 0.1`, KS at 5%, no extra α requirements.
    fn default() -> Self {
        SwapParams {
            kappa: 0.1,
            lambda: 0.1,
            ks_alpha: 0.05,
            alpha_div: 0.0,
            alpha_cog: 0.0,
            alpha_lcov: 0.0,
        }
    }
}

/// Outcome of a multi-scan swap run.
#[derive(Debug, Clone, Default)]
pub struct SwapOutcome {
    /// Number of swaps performed.
    pub swaps: usize,
    /// Number of scans executed.
    pub scans: usize,
    /// The ids removed and added, in order.
    pub replaced: Vec<(PatternId, PatternId)>,
}

/// Set-level measures needed by sw3–sw5, computed over the sample.
fn set_measures(patterns: &[LabeledGraph], ctx: &ScovContext<'_>) -> (f64, f64, f64) {
    let div = patterns
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let others: Vec<LabeledGraph> = patterns
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, q)| q.clone())
                .collect();
            diversity(p, &others)
        })
        .fold(f64::INFINITY, f64::min);
    let div = if div.is_finite() { div } else { 0.0 };
    let cog = patterns
        .iter()
        .map(|p| p.cognitive_load())
        .fold(0.0, f64::max);
    // f_lcov over the sample: fraction of sampled graphs containing at
    // least one pattern edge label.
    let mut union: BTreeSet<GraphId> = BTreeSet::new();
    for p in patterns {
        for label in p.edge_labels() {
            if let Some(stats) = ctx.catalog.get(label) {
                union.extend(stats.support.intersection(ctx.sample).copied());
            }
        }
    }
    let lcov = if ctx.sample.is_empty() {
        0.0
    } else {
        union.len() as f64 / ctx.sample.len() as f64
    };
    (div, cog, lcov)
}

/// Runs the multi-scan swap, mutating `store` and keeping the TP/EP matrix
/// columns of both indices in sync.
pub fn multi_scan_swap(
    store: &mut PatternStore,
    candidates: Vec<LabeledGraph>,
    ctx: &ScovContext<'_>,
    params: &SwapParams,
    fct_index: &mut FctIndex,
    ife_index: &mut IfeIndex,
) -> SwapOutcome {
    multi_scan_swap_weighted(store, candidates, ctx, params, fct_index, ife_index, None)
}

/// The query-log-aware variant (§3.5's extension): pattern and candidate
/// scores are multiplied by their log weight, biasing swaps toward
/// structures users actually formulate. `log = None` is the log-oblivious
/// default.
pub fn multi_scan_swap_weighted(
    store: &mut PatternStore,
    candidates: Vec<LabeledGraph>,
    ctx: &ScovContext<'_>,
    params: &SwapParams,
    fct_index: &mut FctIndex,
    ife_index: &mut IfeIndex,
    log: Option<&crate::query_log::QueryLog>,
) -> SwapOutcome {
    let log_weight = |p: &LabeledGraph| log.map_or(1.0, |l| l.weight(p));
    let mut outcome = SwapOutcome::default();
    if candidates.is_empty() || store.is_empty() {
        return outcome;
    }
    // Remaining candidate pool across scans, with cached coverage/score.
    let mut pool: Vec<LabeledGraph> = candidates;
    let mut sigma = 0.25f64;
    let mut kappa = params.kappa;
    loop {
        let _scan_span = midas_obs::span!("batch.swap.scan");
        outcome.scans += 1;
        // Rank candidates by s' descending against the current set.
        let current = store.graphs();
        let mut ranked: Vec<(f64, f64, LabeledGraph)> = pool
            .iter()
            .map(|c| {
                let score = ctx.midas_score(c, &current) * log_weight(c);
                (score, ctx.scov(c), c.clone())
            })
            .collect();
        ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite scores"));
        // Rank patterns by s' ascending.
        let mut pq_patterns: Vec<(f64, f64, PatternId)> = store
            .iter()
            .map(|(id, p)| {
                let others: Vec<LabeledGraph> = store
                    .iter()
                    .filter(|(other, _)| *other != id)
                    .map(|(_, q)| q.clone())
                    .collect();
                (ctx.midas_score(p, &others) * log_weight(p), ctx.scov(p), id)
            })
            .collect();
        pq_patterns.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite scores"));

        let mut swaps_this_scan = 0;
        let mut consumed: BTreeSet<usize> = BTreeSet::new();
        let mut victim_idx = 0usize;
        'candidates: for (ci, (cand_score, cand_scov, candidate)) in ranked.iter().enumerate() {
            if victim_idx >= pq_patterns.len() {
                break;
            }
            let (victim_score, victim_scov, victim_id) = pq_patterns[victim_idx];
            // sw2 failure terminates the scan (sorted candidates).
            if *cand_score < (1.0 + params.lambda) * victim_score {
                break 'candidates;
            }
            // sw1: benefit vs loss (Def. 6.2 — the coverage delta).
            if *cand_scov < (1.0 + kappa) * victim_scov {
                continue; // try the next candidate against the same victim
            }
            // sw3–sw5 and the KS guard on the hypothetical P'.
            let victim_graph = store.get(victim_id).expect("live pattern").clone();
            let before: Vec<LabeledGraph> = store.graphs();
            let mut after: Vec<LabeledGraph> = store
                .iter()
                .filter(|(id, _)| *id != victim_id)
                .map(|(_, p)| p.clone())
                .collect();
            after.push(candidate.clone());
            let (div_before, cog_before, lcov_before) = set_measures(&before, ctx);
            let (div_after, cog_after, lcov_after) = set_measures(&after, ctx);
            let sw3 = div_after >= (1.0 + params.alpha_div) * div_before;
            let sw4 = cog_before * (1.0 + params.alpha_cog) >= cog_after;
            let sw5 = lcov_after >= (1.0 + params.alpha_lcov) * lcov_before;
            let sizes_before = store.sizes();
            let mut sizes_after: Vec<usize> = before.iter().map(|p| p.edge_count()).collect();
            // Replace the victim's size by the candidate's.
            if let Some(pos) = sizes_after
                .iter()
                .position(|&s| s == victim_graph.edge_count())
            {
                sizes_after[pos] = candidate.edge_count();
            }
            let ks_ok = distributions_similar(&sizes_before, &sizes_after, params.ks_alpha);
            if !(sw3 && sw4 && sw5 && ks_ok) {
                continue; // candidate unusable against this victim
            }
            // Swap.
            store.remove(victim_id);
            fct_index.remove_pattern(victim_id);
            ife_index.remove_pattern(victim_id);
            let new_id = store
                .insert(candidate.clone())
                .expect("candidates were deduplicated against the store");
            fct_index.add_pattern(new_id, candidate);
            ife_index.add_pattern(new_id, candidate);
            outcome.replaced.push((victim_id, new_id));
            outcome.swaps += 1;
            swaps_this_scan += 1;
            consumed.insert(ci);
            victim_idx += 1;
        }
        // Remove consumed candidates from the pool.
        pool = ranked
            .into_iter()
            .enumerate()
            .filter(|(i, _)| !consumed.contains(i))
            .map(|(_, (_, _, c))| c)
            .collect();
        // SWAP_α schedule (Lemma 6.3).
        if swaps_this_scan == 0 || pool.is_empty() || sigma >= 0.5 {
            break;
        }
        kappa = (1.0 - 2.0 * sigma).max(0.0);
        sigma = 0.25 / (1.0 - sigma);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_graph::{GraphBuilder, GraphDb};
    use midas_mining::EdgeCatalog;

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    struct World {
        db: GraphDb,
        catalog: EdgeCatalog,
        sample: BTreeSet<GraphId>,
        fct: FctIndex,
        ife: IfeIndex,
    }

    fn world(graphs: Vec<LabeledGraph>) -> World {
        let db = GraphDb::from_graphs(graphs);
        let refs: Vec<(GraphId, &LabeledGraph)> =
            db.iter().map(|(id, g)| (id, g.as_ref())).collect();
        let catalog = EdgeCatalog::build(refs.iter().copied());
        let sample: BTreeSet<GraphId> = db.ids().collect();
        let fct = FctIndex::build(
            std::iter::empty::<(midas_mining::TreeKey, &LabeledGraph)>(),
            refs.iter().copied(),
            std::iter::empty::<(PatternId, &LabeledGraph)>(),
        );
        let ife = IfeIndex::build(
            BTreeSet::new(),
            refs.iter().copied(),
            std::iter::empty::<(PatternId, &LabeledGraph)>(),
        );
        World {
            db,
            catalog,
            sample,
            fct,
            ife,
        }
    }

    fn params() -> SwapParams {
        SwapParams {
            kappa: 0.1,
            lambda: 0.1,
            ks_alpha: 0.05,
            ..Default::default()
        }
    }

    #[test]
    fn beneficial_swap_happens() {
        // DB dominated by S-S-S chains; current pattern is a stale C-O-N
        // (covers 1 graph), candidate S-S-S covers 5.
        let mut graphs = vec![path(&[0, 1, 2])];
        graphs.extend(vec![path(&[3, 3, 3]); 5]);
        let mut w = world(graphs);
        let mut store = PatternStore::new();
        store.insert(path(&[0, 1, 2])).unwrap();
        let ctx = ScovContext {
            fct: &w.fct.clone(),
            ife: &w.ife.clone(),
            db: &w.db,
            sample: &w.sample,
            catalog: &w.catalog,
            kernel: None,
        };
        let outcome = multi_scan_swap(
            &mut store,
            vec![path(&[3, 3, 3])],
            &ctx,
            &params(),
            &mut w.fct,
            &mut w.ife,
        );
        assert_eq!(outcome.swaps, 1);
        assert_eq!(store.len(), 1);
        assert!(store.contains_isomorphic(&path(&[3, 3, 3])));
    }

    #[test]
    fn quality_never_degrades_under_swaps() {
        let mut graphs = vec![path(&[0, 1, 2]); 2];
        graphs.extend(vec![path(&[3, 3, 3]); 6]);
        graphs.extend(vec![path(&[0, 1]); 2]);
        let mut w = world(graphs);
        let mut store = PatternStore::new();
        store.insert(path(&[0, 1, 2])).unwrap();
        store.insert(path(&[0, 1, 0])).unwrap();
        let fct_snapshot = w.fct.clone();
        let ife_snapshot = w.ife.clone();
        let ctx = ScovContext {
            fct: &fct_snapshot,
            ife: &ife_snapshot,
            db: &w.db,
            sample: &w.sample,
            catalog: &w.catalog,
            kernel: None,
        };
        let before = crate::metrics::quality_of(&store.graphs(), &w.db, &w.catalog, &w.sample);
        multi_scan_swap(
            &mut store,
            vec![path(&[3, 3, 3]), path(&[3, 3])],
            &ctx,
            &params(),
            &mut w.fct,
            &mut w.ife,
        );
        let after = crate::metrics::quality_of(&store.graphs(), &w.db, &w.catalog, &w.sample);
        assert!(after.scov >= before.scov, "sw1 guarantees coverage gain");
        assert!(after.div >= before.div, "sw3");
        assert!(after.cog <= before.cog + 1e-9, "sw4");
        assert!(after.lcov >= before.lcov - 1e-9, "sw5");
    }

    #[test]
    fn useless_candidates_cause_no_swaps() {
        let graphs = vec![path(&[0, 1, 2]); 5];
        let mut w = world(graphs);
        let mut store = PatternStore::new();
        store.insert(path(&[0, 1, 2])).unwrap();
        let fct_snapshot = w.fct.clone();
        let ife_snapshot = w.ife.clone();
        let ctx = ScovContext {
            fct: &fct_snapshot,
            ife: &ife_snapshot,
            db: &w.db,
            sample: &w.sample,
            catalog: &w.catalog,
            kernel: None,
        };
        // Candidate covering nothing.
        let outcome = multi_scan_swap(
            &mut store,
            vec![path(&[7, 7, 7])],
            &ctx,
            &params(),
            &mut w.fct,
            &mut w.ife,
        );
        assert_eq!(outcome.swaps, 0);
        assert!(store.contains_isomorphic(&path(&[0, 1, 2])));
    }

    #[test]
    fn empty_inputs_are_noops() {
        let mut w = world(vec![path(&[0, 1])]);
        let mut store = PatternStore::new();
        let fct_snapshot = w.fct.clone();
        let ife_snapshot = w.ife.clone();
        let ctx = ScovContext {
            fct: &fct_snapshot,
            ife: &ife_snapshot,
            db: &w.db,
            sample: &w.sample,
            catalog: &w.catalog,
            kernel: None,
        };
        let outcome = multi_scan_swap(
            &mut store,
            vec![path(&[0, 1])],
            &ctx,
            &params(),
            &mut w.fct,
            &mut w.ife,
        );
        assert_eq!(outcome.swaps, 0, "empty store: nothing to swap");
        store.insert(path(&[0, 1])).unwrap();
        let outcome2 = multi_scan_swap(&mut store, vec![], &ctx, &params(), &mut w.fct, &mut w.ife);
        assert_eq!(outcome2.swaps, 0, "no candidates: nothing to do");
    }

    #[test]
    fn query_log_weighting_changes_priorities() {
        use crate::query_log::QueryLog;
        // Two candidates with similar coverage; the log favours one.
        let mut graphs = vec![path(&[0, 1, 2])];
        graphs.extend(vec![path(&[3, 3, 3]); 4]);
        graphs.extend(vec![path(&[4, 4, 4]); 4]);
        let mut w = world(graphs);
        let mut store = PatternStore::new();
        store.insert(path(&[0, 1, 2])).unwrap();
        let fct_snapshot = w.fct.clone();
        let ife_snapshot = w.ife.clone();
        let ctx = ScovContext {
            fct: &fct_snapshot,
            ife: &ife_snapshot,
            db: &w.db,
            sample: &w.sample,
            catalog: &w.catalog,
            kernel: None,
        };
        let mut log = QueryLog::new(16);
        for _ in 0..5 {
            log.record(path(&[4, 4, 4, 4]));
        }
        let outcome = crate::swap::multi_scan_swap_weighted(
            &mut store,
            vec![path(&[3, 3, 3]), path(&[4, 4, 4])],
            &ctx,
            &params(),
            &mut w.fct,
            &mut w.ife,
            Some(&log),
        );
        assert!(outcome.swaps >= 1);
        // The single slot must have gone to the logged family.
        assert!(
            store.contains_isomorphic(&path(&[4, 4, 4])),
            "log-weighted swap should prefer the formulated family"
        );
    }

    #[test]
    fn indices_track_pattern_columns() {
        let mut graphs = vec![path(&[0, 1, 2])];
        graphs.extend(vec![path(&[3, 3, 3]); 5]);
        let mut w = world(graphs);
        let mut store = PatternStore::new();
        let old_id = store.insert(path(&[0, 1, 2])).unwrap();
        w.fct.add_pattern(old_id, &path(&[0, 1, 2]));
        w.ife.add_pattern(old_id, &path(&[0, 1, 2]));
        let fct_snapshot = w.fct.clone();
        let ife_snapshot = w.ife.clone();
        let ctx = ScovContext {
            fct: &fct_snapshot,
            ife: &ife_snapshot,
            db: &w.db,
            sample: &w.sample,
            catalog: &w.catalog,
            kernel: None,
        };
        let outcome = multi_scan_swap(
            &mut store,
            vec![path(&[3, 3, 3])],
            &ctx,
            &params(),
            &mut w.fct,
            &mut w.ife,
        );
        assert_eq!(outcome.swaps, 1);
        let (removed, added) = outcome.replaced[0];
        assert_eq!(removed, old_id);
        assert!(w.fct.tp().col(removed).next().is_none());
        // The new pattern's column may be empty (no features), but the
        // store must hold it.
        assert!(store.get(added).is_some());
    }
}
