//! Lazy sampling of `D_s ⊂ D` for subgraph-coverage computation (§6.1).
//!
//! Exact `scov` over a large database is prohibitively expensive, so MIDAS
//! computes it over a sampled database (the lazy sampling technique it
//! inherits from CATAPULT \[23\]). We sample **stratified by cluster** —
//! proportional allocation keeps the sample's structural mix representative
//! — with a deterministic seed.

use midas_cluster::ClusterSet;
use midas_graph::{GraphDb, GraphId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeSet;

/// Draws a cluster-stratified sample of about `target` graphs.
///
/// Every cluster contributes `⌈target · |C_i| / |D|⌉` members (so small
/// clusters are never erased from the sample); if `target ≥ |D|` the whole
/// database is returned.
pub fn sample_database(
    db: &GraphDb,
    clusters: &ClusterSet,
    target: usize,
    seed: u64,
) -> BTreeSet<GraphId> {
    let total = db.len();
    if target >= total {
        return db.ids().collect();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sample = BTreeSet::new();
    for (_, cluster) in clusters.iter() {
        let members: Vec<GraphId> = cluster
            .members()
            .iter()
            .copied()
            .filter(|&id| db.contains(id))
            .collect();
        if members.is_empty() {
            continue;
        }
        let quota = ((target as f64) * members.len() as f64 / total as f64).ceil() as usize;
        let quota = quota.clamp(1, members.len());
        let mut pool = members;
        for _ in 0..quota {
            let idx = rng.random_range(0..pool.len());
            sample.insert(pool.swap_remove(idx));
        }
    }
    // Graphs not (yet) clustered — e.g. mid-maintenance — are sampled from
    // uniformly to keep coverage estimates unbiased.
    let unclustered: Vec<GraphId> = db
        .ids()
        .filter(|&id| clusters.cluster_of(id).is_none())
        .collect();
    if !unclustered.is_empty() {
        let quota = ((target as f64) * unclustered.len() as f64 / total as f64).ceil() as usize;
        let mut pool = unclustered;
        for _ in 0..quota.min(pool.len()) {
            let idx = rng.random_range(0..pool.len());
            sample.insert(pool.swap_remove(idx));
        }
    }
    sample
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_cluster::{ClusterConfig, FeatureSpace};
    use midas_graph::{GraphBuilder, LabeledGraph};
    use midas_mining::{mine_lattice, MiningConfig};

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    fn world(n_a: usize, n_b: usize) -> (GraphDb, ClusterSet) {
        let mut graphs = Vec::new();
        for _ in 0..n_a {
            graphs.push(path(&[0, 1, 0]));
        }
        for _ in 0..n_b {
            graphs.push(path(&[3, 4, 3]));
        }
        let db = GraphDb::from_graphs(graphs);
        let refs: Vec<_> = db.iter().map(|(id, g)| (id, g.as_ref())).collect();
        let lattice = mine_lattice(
            &refs,
            &MiningConfig {
                sup_min: 0.2,
                max_edges: 2,
            },
        );
        let space = FeatureSpace::from_frequent(&lattice, 0.2, db.len());
        let clusters = ClusterSet::build(
            &db,
            &lattice,
            space,
            ClusterConfig {
                coarse_clusters: 2,
                ..ClusterConfig::default()
            },
        );
        (db, clusters)
    }

    #[test]
    fn full_sample_when_target_exceeds_db() {
        let (db, clusters) = world(3, 3);
        let sample = sample_database(&db, &clusters, 100, 0);
        assert_eq!(sample.len(), db.len());
    }

    #[test]
    fn stratification_covers_every_cluster() {
        let (db, clusters) = world(20, 4);
        let sample = sample_database(&db, &clusters, 6, 1);
        assert!(sample.len() >= 6);
        assert!(sample.len() < db.len());
        for (_, cluster) in clusters.iter() {
            assert!(
                cluster.members().iter().any(|id| sample.contains(id)),
                "every cluster contributes at least one member"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (db, clusters) = world(12, 12);
        let a = sample_database(&db, &clusters, 8, 5);
        let b = sample_database(&db, &clusters, 8, 5);
        assert_eq!(a, b);
        let c = sample_database(&db, &clusters, 8, 6);
        // Different seeds usually differ (not guaranteed, but with 24
        // graphs the probability of equality is negligible).
        assert!(a != c || a.len() == db.len());
    }

    #[test]
    fn sample_ids_are_live() {
        let (db, clusters) = world(10, 10);
        let sample = sample_database(&db, &clusters, 5, 2);
        assert!(sample.iter().all(|&id| db.contains(id)));
    }
}
