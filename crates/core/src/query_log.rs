//! Query-log-aware pattern weighting — the extension sketched in §3.5.
//!
//! > "Observe that our framework is query log-oblivious as most
//! > publicly-available graph repositories do not make such data available.
//! > Nevertheless, MIDAS can be easily extended to accommodate query logs
//! > by considering the weight of a pattern based on its frequency in the
//! > log during multi-scan swapping."
//!
//! A [`QueryLog`] records formulated queries; a pattern's *log weight* is
//! the smoothed fraction of logged queries it embeds in. The swap phase
//! can multiply `s'_p` by this weight (see
//! [`crate::swap::multi_scan_swap_weighted`]), which biases maintenance
//! toward keeping patterns users actually reach for.

use midas_graph::isomorphism::is_subgraph_of;
use midas_graph::LabeledGraph;
use std::collections::VecDeque;

/// A bounded log of recently formulated queries.
#[derive(Debug, Clone)]
pub struct QueryLog {
    queries: VecDeque<LabeledGraph>,
    capacity: usize,
    /// Additive smoothing so unlogged patterns keep a positive weight
    /// (otherwise one empty log would zero every score).
    smoothing: f64,
}

impl QueryLog {
    /// Creates a log holding at most `capacity` recent queries.
    pub fn new(capacity: usize) -> Self {
        QueryLog {
            queries: VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            smoothing: 0.1,
        }
    }

    /// Records one formulated query, evicting the oldest beyond capacity.
    pub fn record(&mut self, query: LabeledGraph) {
        if self.queries.len() == self.capacity {
            self.queries.pop_front();
        }
        self.queries.push_back(query);
    }

    /// Records a batch of queries.
    pub fn record_all<I: IntoIterator<Item = LabeledGraph>>(&mut self, queries: I) {
        for q in queries {
            self.record(q);
        }
    }

    /// Number of logged queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The pattern's log weight: `(hits + s) / (|log| + s)` where `hits`
    /// is the number of logged queries containing the pattern and `s` the
    /// smoothing constant. An empty log yields the neutral weight 1.
    pub fn weight(&self, pattern: &LabeledGraph) -> f64 {
        if self.queries.is_empty() {
            return 1.0;
        }
        let hits = self
            .queries
            .iter()
            .filter(|q| is_subgraph_of(pattern, q))
            .count();
        (hits as f64 + self.smoothing) / (self.queries.len() as f64 + self.smoothing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_graph::GraphBuilder;

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    #[test]
    fn empty_log_is_neutral() {
        let log = QueryLog::new(10);
        assert_eq!(log.weight(&path(&[0, 1])), 1.0);
        assert!(log.is_empty());
    }

    #[test]
    fn popular_patterns_weigh_more() {
        let mut log = QueryLog::new(10);
        log.record_all(vec![path(&[0, 1, 2]), path(&[0, 1, 0]), path(&[3, 3])]);
        let popular = path(&[0, 1]); // embeds in 2 of 3 queries
        let rare = path(&[3, 3]); // embeds in 1
        let absent = path(&[7, 7]);
        assert!(log.weight(&popular) > log.weight(&rare));
        assert!(log.weight(&rare) > log.weight(&absent));
        assert!(
            log.weight(&absent) > 0.0,
            "smoothing keeps weights positive"
        );
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut log = QueryLog::new(2);
        log.record(path(&[0, 1]));
        log.record(path(&[0, 2]));
        log.record(path(&[0, 3]));
        assert_eq!(log.len(), 2);
        // The first query left the window.
        let old = path(&[0, 1]);
        let hits_weight = log.weight(&old);
        assert!(
            hits_weight < 0.5,
            "evicted query no longer counts: {hits_weight}"
        );
    }
}
