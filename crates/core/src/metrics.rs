//! Scoring context and pattern-set quality metrics.
//!
//! [`ScovContext`] bundles everything needed to evaluate subgraph coverage
//! the MIDAS way: the FCT/IFE indices for dominance filtering (§6.1) and
//! the lazy sample `D_s` that bounds the cost.

use midas_catapult::score::{
    diversity, lcov_pattern, pattern_score, PatternScoreParts, SetQuality,
};
use midas_graph::{GraphDb, GraphId, LabeledGraph, MatchKernel};
use midas_index::scov::{covered_graphs, covered_graphs_with};
use midas_index::{FctIndex, IfeIndex};
use midas_mining::EdgeCatalog;
use std::collections::BTreeSet;

/// Everything needed to compute `scov` and the MIDAS pattern score `s'_p`.
pub struct ScovContext<'a> {
    /// The FCT-Index.
    pub fct: &'a FctIndex,
    /// The IFE-Index.
    pub ife: &'a IfeIndex,
    /// The database.
    pub db: &'a GraphDb,
    /// The sampled universe `D_s` (§6.1).
    pub sample: &'a BTreeSet<GraphId>,
    /// The edge catalog (for `lcov`).
    pub catalog: &'a EdgeCatalog,
    /// Optional parallel + memoized kernel for the VF2 verification step.
    /// `None` runs the serial uncached reference path — the two always
    /// produce the same sets (pinned by property tests).
    pub kernel: Option<&'a MatchKernel>,
}

impl ScovContext<'_> {
    /// The sampled graphs containing `pattern`.
    pub fn covered(&self, pattern: &LabeledGraph) -> BTreeSet<GraphId> {
        match self.kernel {
            Some(kernel) => {
                covered_graphs_with(kernel, self.fct, self.ife, self.db, pattern, self.sample)
            }
            None => covered_graphs(self.fct, self.ife, self.db, pattern, self.sample),
        }
    }

    /// `scov(p, D_s) = |G_p ∩ D_s| / |D_s|`.
    pub fn scov(&self, pattern: &LabeledGraph) -> f64 {
        if self.sample.is_empty() {
            return 0.0;
        }
        self.covered(pattern).len() as f64 / self.sample.len() as f64
    }

    /// The MIDAS pattern score `s'_p = scov × lcov × div / cog` (§6.1),
    /// with diversity measured against `others`.
    pub fn midas_score(&self, pattern: &LabeledGraph, others: &[LabeledGraph]) -> f64 {
        pattern_score(PatternScoreParts {
            coverage: self.scov(pattern),
            lcov: lcov_pattern(pattern, self.catalog, self.db.len()),
            div: diversity(pattern, others),
            cog: pattern.cognitive_load(),
        })
    }
}

/// Pattern-set quality `(f_scov, f_lcov, f_div, f_cog)` over an explicit
/// universe — re-exported convenience over
/// [`midas_catapult::score::set_quality`].
pub fn quality_of(
    patterns: &[LabeledGraph],
    db: &GraphDb,
    catalog: &EdgeCatalog,
    universe: &BTreeSet<GraphId>,
) -> SetQuality {
    midas_catapult::score::set_quality(patterns, db, catalog, universe)
}

/// [`quality_of`] with the containment scan routed through `kernel`.
pub fn quality_of_with(
    kernel: &MatchKernel,
    patterns: &[LabeledGraph],
    db: &GraphDb,
    catalog: &EdgeCatalog,
    universe: &BTreeSet<GraphId>,
) -> SetQuality {
    midas_catapult::score::set_quality_with(kernel, patterns, db, catalog, universe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_graph::GraphBuilder;
    use midas_index::PatternId;
    use midas_mining::tree_key;

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    struct World {
        db: GraphDb,
        fct: FctIndex,
        ife: IfeIndex,
        catalog: EdgeCatalog,
    }

    fn world() -> World {
        let db = GraphDb::from_graphs([path(&[0, 1, 2]), path(&[0, 1]), path(&[3, 4])]);
        let refs: Vec<(GraphId, &LabeledGraph)> =
            db.iter().map(|(id, g)| (id, g.as_ref())).collect();
        let feature = path(&[0, 1]);
        let fct = FctIndex::build(
            [(tree_key(&feature), &feature)],
            refs.iter().copied(),
            std::iter::empty::<(PatternId, &LabeledGraph)>(),
        );
        let ife = IfeIndex::build(
            BTreeSet::new(),
            refs.iter().copied(),
            std::iter::empty::<(PatternId, &LabeledGraph)>(),
        );
        let catalog = EdgeCatalog::build(refs.iter().copied());
        World {
            db,
            fct,
            ife,
            catalog,
        }
    }

    #[test]
    fn scov_over_sample() {
        let w = world();
        let sample: BTreeSet<GraphId> = w.db.ids().collect();
        let ctx = ScovContext {
            fct: &w.fct,
            ife: &w.ife,
            db: &w.db,
            sample: &sample,
            catalog: &w.catalog,
            kernel: None,
        };
        assert!((ctx.scov(&path(&[0, 1])) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(ctx.scov(&path(&[7, 7])), 0.0);
        let empty = BTreeSet::new();
        let ctx2 = ScovContext {
            sample: &empty,
            ..ctx
        };
        assert_eq!(ctx2.scov(&path(&[0, 1])), 0.0);
    }

    #[test]
    fn midas_score_is_positive_for_covered_patterns() {
        let w = world();
        let sample: BTreeSet<GraphId> = w.db.ids().collect();
        let ctx = ScovContext {
            fct: &w.fct,
            ife: &w.ife,
            db: &w.db,
            sample: &sample,
            catalog: &w.catalog,
            kernel: None,
        };
        let s = ctx.midas_score(&path(&[0, 1]), &[path(&[3, 4])]);
        assert!(s > 0.0);
        // Uncovered pattern scores zero via the coverage factor.
        assert_eq!(ctx.midas_score(&path(&[7, 7]), &[]), 0.0);
    }
}
