//! Live observability, end to end: a `Midas` instance bootstrapped with
//! `serve` on must answer `/metrics` (with quantile series), `/snapshot`,
//! `/healthz` and `/flight` over plain HTTP, and the flight recorder must
//! retain exactly its configured capacity after wraparound.
//!
//! The telemetry switch, the flight recorder and `MIDAS_SERVE` are all
//! process-global, so every test here holds a shared lock and restores
//! the defaults before releasing it.

use midas_core::framework::Midas;
use midas_graph::{BatchUpdate, GraphDb, LabeledGraph};
use midas_obs::{json, TelemetryConfig};
use midas_tests::{path, test_config};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn seed_db() -> GraphDb {
    GraphDb::from_graphs((0..24).map(|i| path(&[0, 1, 2, 0, (i % 3) as u32])))
}

fn wave(seed: u32) -> Vec<LabeledGraph> {
    (0..4)
        .map(|i| path(&[seed % 5, (i + seed) % 5, 2]))
        .collect()
}

/// Minimal HTTP/1.1 GET over a std TcpStream: returns (status, body).
fn http_get(addr: SocketAddr, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to obs server");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(stream, "GET {target} HTTP/1.1\r\nHost: midas\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn served_endpoints_answer_with_quantiles_and_bounded_flight_history() {
    let _g = exclusive();
    // The documented deployment path: MIDAS_SERVE names the bind address
    // and (via from_env) flips `serve` + `enabled` on.
    std::env::set_var("MIDAS_SERVE", "127.0.0.1:0");
    midas_obs::flight::clear();
    midas_obs::flight::set_capacity(8);

    let mut cfg = test_config(7);
    cfg.telemetry.enabled = true;
    cfg.telemetry.flight_capacity = 8;
    let mut midas = Midas::bootstrap(seed_db(), cfg).unwrap();
    let addr = midas.obs_addr().expect("server bound via MIDAS_SERVE");

    // More batches than the flight recorder holds, to force wraparound.
    for i in 0..10u32 {
        midas.apply_batch(BatchUpdate::insert_only(wave(i)));
    }

    // /flight — valid JSON, exactly `capacity` summaries survive, and they
    // are the *newest* ones (seq 3..=10 after 10 batches into a ring of 8).
    let (status, body) = http_get(addr, "/flight");
    assert_eq!(status, 200);
    json::validate(&body).expect("flight dump is valid JSON");
    assert_eq!(body.matches("\"seq\": ").count(), 8, "ring keeps 8 of 10");
    assert!(!body.contains("\"seq\": 2,"), "oldest summaries evicted");
    assert!(body.contains("\"seq\": 10,"), "newest summary retained");
    assert!(body.contains("\"total_batches\": 10"));

    // /metrics — Prometheus text exposition with quantile-labeled series
    // for the VF2 latency histogram fed by the isomorphism kernel.
    let (status, body) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        body.contains("midas_vf2_search_ns{quantile=\"0.99\"}"),
        "p99 VF2 latency series missing:\n{body}"
    );
    assert!(body.contains("# TYPE midas_vf2_search_ns summary"));
    assert!(body.contains("midas_pmt_us "), "pmt counter series missing");

    // /healthz — drift + batch progress as JSON.
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    json::validate(&body).expect("healthz is valid JSON");
    assert!(body.contains("\"status\": \"ok\""));
    assert!(body.contains("\"batches\": 10"));

    // /snapshot — the full registry snapshot, also valid JSON.
    let (status, body) = http_get(addr, "/snapshot");
    assert_eq!(status, 200);
    json::validate(&body).expect("snapshot is valid JSON");
    assert!(body.contains("\"counters\""));

    // Unknown routes 404 without killing the worker.
    let (status, _) = http_get(addr, "/nope");
    assert_eq!(status, 404);
    let (status, _) = http_get(addr, "/metrics");
    assert_eq!(status, 200, "server survives a 404");

    std::env::remove_var("MIDAS_SERVE");
    midas_obs::flight::set_capacity(midas_obs::flight::DEFAULT_CAPACITY);
    midas_obs::flight::clear();
    TelemetryConfig::default().activate();
}

#[test]
fn serve_off_binds_nothing() {
    let _g = exclusive();
    std::env::remove_var("MIDAS_SERVE");
    let midas = Midas::bootstrap(seed_db(), test_config(7)).unwrap();
    assert!(midas.obs_addr().is_none());
    TelemetryConfig::default().activate();
}
