//! End-to-end telemetry: Algorithm-1 phase spans must tile PMT, the
//! required counters must appear in a batch's snapshot, and both exporters
//! must emit valid JSON.
//!
//! The telemetry switch is process-global, so every test here holds a
//! shared lock and restores the disabled default before releasing it.

use midas_core::framework::Midas;
use midas_graph::{BatchUpdate, GraphBuilder, GraphDb, LabeledGraph};
use midas_obs::{json, MetricsSnapshot, TelemetryConfig};
use midas_tests::{path, test_config};
use std::sync::{Mutex, MutexGuard};

static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn seed_db() -> GraphDb {
    GraphDb::from_graphs((0..24).map(|i| path(&[0, 1, 2, 0, (i % 3) as u32])))
}

fn dense_wave() -> Vec<LabeledGraph> {
    let brick = GraphBuilder::new()
        .vertices(&[3, 3, 3, 3])
        .path(&[0, 1, 2, 3])
        .edge(0, 2)
        .edge(1, 3)
        .edge(0, 3)
        .build();
    vec![brick; 16]
}

/// The Algorithm-1 phase spans, in pipeline order.
const PHASES: &[&str] = &[
    "batch.ingest",
    "batch.fct",
    "batch.cluster",
    "batch.index",
    "batch.classify",
    "batch.candidates",
    "batch.swap",
];

#[test]
fn phase_spans_tile_pattern_maintenance_time() {
    let _g = exclusive();
    let mut cfg = test_config(7);
    cfg.telemetry.enabled = true; // metrics only; no trace.json side effect
    let mut midas = Midas::bootstrap(seed_db(), cfg).unwrap();
    let report = midas.apply_batch(BatchUpdate::insert_only(dense_wave()));
    TelemetryConfig::default().activate();

    // Every phase that ran left exactly one span; together they must cover
    // at least 95% of PMT (what is left over is Vec bookkeeping between
    // phases and the snapshot captures themselves).
    let telemetry = &report.telemetry;
    for phase in &PHASES[..5] {
        assert_eq!(telemetry.span(phase).count, 1, "span {phase}");
    }
    let covered = telemetry.span_total(PHASES);
    let pmt = report.pattern_maintenance_time;
    assert!(
        covered.as_secs_f64() >= 0.95 * pmt.as_secs_f64(),
        "phase spans cover {covered:?} of PMT {pmt:?}"
    );

    // The counters the CI schema gate requires, plus phase accounting.
    assert!(telemetry.counter("pmt_us") > 0);
    assert!(telemetry.counter("vf2.nodes") > 0);
    assert!(telemetry.counter("cache.hits") + telemetry.counter("cache.misses") > 0);
    assert_eq!(telemetry.counter("batch.inserted"), 16);
    assert_eq!(
        telemetry.counter("monitor.major") + telemetry.counter("monitor.minor"),
        1,
        "snapshot delta is scoped to exactly one batch"
    );
    // PGT phases only run on a major modification; this wave forces one.
    assert!(telemetry.counter("monitor.major") == 1, "wave drifts");
    assert_eq!(telemetry.span("batch.candidates").count, 1);
    assert_eq!(telemetry.span("batch.swap").count, 1);
    assert!(telemetry.span("batch.swap.scan").count >= 1);
}

#[test]
fn metrics_snapshot_exports_valid_json() {
    let _g = exclusive();
    let mut cfg = test_config(11);
    cfg.telemetry.enabled = true;
    let mut midas = Midas::bootstrap(seed_db(), cfg).unwrap();
    let report = midas.apply_batch(BatchUpdate::insert_only(dense_wave()));
    TelemetryConfig::default().activate();

    let doc = report.telemetry.to_json();
    json::validate(&doc).expect("metrics JSON validates");
    for key in ["\"pmt_us\"", "\"cache.hits\"", "\"vf2.nodes\"", "\"spans\""] {
        assert!(doc.contains(key), "metrics.json must contain {key}");
    }

    // Round-trip through a file, as the CI gate consumes it.
    let file = std::env::temp_dir().join(format!("midas-metrics-{}.json", std::process::id()));
    report.telemetry.write(&file).expect("write metrics.json");
    let read_back = std::fs::read_to_string(&file).expect("read metrics.json");
    json::validate(&read_back).expect("file round-trip validates");
    let _ = std::fs::remove_file(&file);
}

#[test]
fn trace_export_is_valid_chrome_trace() {
    let _g = exclusive();
    let trace_file = std::env::temp_dir().join(format!("midas-trace-{}.json", std::process::id()));
    std::env::set_var("MIDAS_TRACE_OUT", &trace_file);
    let mut cfg = test_config(13);
    cfg.telemetry.enabled = true;
    cfg.telemetry.trace = true;
    let mut midas = Midas::bootstrap(seed_db(), cfg).unwrap();
    let _report = midas.apply_batch(BatchUpdate::insert_only(dense_wave()));
    TelemetryConfig::default().activate();
    std::env::remove_var("MIDAS_TRACE_OUT");

    let doc = std::fs::read_to_string(&trace_file).expect("trace.json written");
    let _ = std::fs::remove_file(&trace_file);
    json::validate(&doc).expect("trace JSON validates");
    assert!(doc.contains("\"traceEvents\""));
    assert!(doc.contains("\"ph\": \"X\""));
    assert!(doc.contains("\"batch.ingest\""));
    assert!(doc.contains("\"displayTimeUnit\": \"ms\""));
}

#[test]
fn disabled_telemetry_leaves_no_trace_in_reports() {
    let _g = exclusive();
    TelemetryConfig::default().activate();
    let mut midas = Midas::bootstrap(seed_db(), test_config(17)).unwrap();
    let report = midas.apply_batch(BatchUpdate::insert_only(vec![path(&[0, 1, 2])]));
    assert!(report.telemetry.is_empty());
    assert!(MetricsSnapshot::capture()
        .since(&MetricsSnapshot::capture())
        .counters
        .is_empty());
}
