//! Property tests for the parallel + memoized isomorphism kernel: every
//! cached/parallel path must agree exactly with the serial uncached
//! reference, including across insert/delete invalidation, and the
//! signature prefilter must never reject a true embedding.

use midas_graph::isomorphism::{count_embeddings, is_subgraph_of, GraphSignature};
use midas_graph::{CachedPattern, GraphDb, GraphId, LabeledGraph, MatchKernel};
use midas_index::scov::{covered_graphs, covered_graphs_with};
use midas_index::{FctIndex, IfeIndex, PatternId};
use midas_tests::connected_graph_strategy;
use proptest::prelude::*;
use std::collections::BTreeSet;

const CAP: u64 = 64;

fn db_refs(db: &GraphDb) -> Vec<(GraphId, &LabeledGraph)> {
    db.iter().map(|(id, g)| (id, g.as_ref())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Kernel bulk counts equal the serial uncached loop, on first
    /// (cold) and second (fully memoized) passes alike.
    #[test]
    fn kernel_counts_match_serial(
        graphs in proptest::collection::vec(connected_graph_strategy(6, 3), 2..8),
        patterns in proptest::collection::vec(connected_graph_strategy(4, 3), 1..4),
    ) {
        let db = GraphDb::from_graphs(graphs);
        let refs = db_refs(&db);
        let kernel = MatchKernel::new(4);
        for pass in 0..2 {
            for p in &patterns {
                let got = kernel.count_in_graphs(p, &refs, CAP);
                let covered = kernel.covered_in(p, &refs);
                for (i, &(_, g)) in refs.iter().enumerate() {
                    prop_assert_eq!(got[i], count_embeddings(p, g, CAP), "pass {}", pass);
                    prop_assert_eq!(covered[i], is_subgraph_of(p, g), "pass {}", pass);
                }
            }
        }
    }

    /// The grid (many patterns × many graphs) equals nested serial loops.
    #[test]
    fn kernel_grid_matches_serial(
        graphs in proptest::collection::vec(connected_graph_strategy(6, 3), 2..6),
        patterns in proptest::collection::vec(connected_graph_strategy(4, 3), 1..4),
    ) {
        let db = GraphDb::from_graphs(graphs);
        let refs = db_refs(&db);
        let kernel = MatchKernel::new(3);
        let prepared: Vec<CachedPattern> = patterns.iter().map(|p| kernel.prepare(p)).collect();
        let grid = kernel.count_grid(&prepared, &refs, CAP);
        for (i, &(_, g)) in refs.iter().enumerate() {
            for (j, p) in patterns.iter().enumerate() {
                prop_assert_eq!(grid[i][j], count_embeddings(p, g, CAP));
            }
        }
    }

    /// Cached answers stay correct across insert/delete invalidation:
    /// after a batch mutates the database, re-querying through the kernel
    /// (with per-graph invalidation, as `Midas::maintain_indices` does)
    /// matches a fresh serial scan of the new database state.
    #[test]
    fn kernel_stays_correct_across_batches(
        initial in proptest::collection::vec(connected_graph_strategy(6, 3), 3..7),
        added in proptest::collection::vec(connected_graph_strategy(6, 3), 1..4),
        pattern in connected_graph_strategy(4, 3),
        delete_first in 0u8..2,
    ) {
        let delete_first = delete_first == 1;
        let mut db = GraphDb::from_graphs(initial);
        let kernel = MatchKernel::new(2);
        // Warm the cache on the initial state.
        kernel.count_in_graphs(&pattern, &db_refs(&db), CAP);

        // Mutate: optionally delete the first graph, then insert `added`.
        let mut update = midas_graph::BatchUpdate::insert_only(added);
        if delete_first {
            update.delete.push(db.ids().next().unwrap());
        }
        let (inserted, deleted) = db.apply(update);
        for &id in deleted.iter().chain(&inserted) {
            kernel.invalidate_graph(id);
        }

        let refs = db_refs(&db);
        let got = kernel.count_in_graphs(&pattern, &refs, CAP);
        for (i, &(_, g)) in refs.iter().enumerate() {
            prop_assert_eq!(got[i], count_embeddings(&pattern, g, CAP));
        }
    }

    /// The label-multiset / degree-sequence prefilter is sound: whenever
    /// the pattern truly embeds in the target, the signature must say the
    /// embedding is possible.
    #[test]
    fn prefilter_never_rejects_true_embeddings(
        pattern in connected_graph_strategy(5, 3),
        target in connected_graph_strategy(7, 3),
    ) {
        if is_subgraph_of(&pattern, &target) {
            prop_assert!(
                GraphSignature::of(&pattern).may_embed_in(&GraphSignature::of(&target)),
                "prefilter rejected a true embedding: {pattern:?} ⊑ {target:?}"
            );
        }
        // Self-embedding is always true, so in particular:
        prop_assert!(
            GraphSignature::of(&target).may_embed_in(&GraphSignature::of(&target))
        );
    }

    /// Index-accelerated coverage through the kernel equals the serial
    /// uncached path, before and after a batch update.
    #[test]
    fn covered_graphs_kernel_matches_serial_across_updates(
        initial in proptest::collection::vec(connected_graph_strategy(6, 3), 3..7),
        added in proptest::collection::vec(connected_graph_strategy(6, 3), 1..3),
        pattern in connected_graph_strategy(4, 3),
    ) {
        let mut db = GraphDb::from_graphs(initial);
        let kernel = MatchKernel::new(2);

        let build = |db: &GraphDb| {
            let refs = db_refs(db);
            let fct = FctIndex::build(
                std::iter::empty::<(midas_mining::TreeKey, &LabeledGraph)>(),
                refs.iter().copied(),
                std::iter::empty::<(PatternId, &LabeledGraph)>(),
            );
            let ife = IfeIndex::build(
                BTreeSet::new(),
                refs.iter().copied(),
                std::iter::empty::<(PatternId, &LabeledGraph)>(),
            );
            (fct, ife)
        };

        let (fct, ife) = build(&db);
        let universe: BTreeSet<GraphId> = db.ids().collect();
        let serial = covered_graphs(&fct, &ife, &db, &pattern, &universe);
        let cached = covered_graphs_with(&kernel, &fct, &ife, &db, &pattern, &universe);
        prop_assert_eq!(serial, cached);

        let (inserted, deleted) = db.apply(midas_graph::BatchUpdate::insert_only(added));
        for &id in deleted.iter().chain(&inserted) {
            kernel.invalidate_graph(id);
        }
        let (fct, ife) = build(&db);
        let universe: BTreeSet<GraphId> = db.ids().collect();
        let serial = covered_graphs(&fct, &ife, &db, &pattern, &universe);
        let cached = covered_graphs_with(&kernel, &fct, &ife, &db, &pattern, &universe);
        prop_assert_eq!(serial, cached);
    }

    /// Set quality through the kernel equals the serial computation.
    #[test]
    fn set_quality_kernel_matches_serial(
        graphs in proptest::collection::vec(connected_graph_strategy(6, 3), 2..6),
        patterns in proptest::collection::vec(connected_graph_strategy(4, 3), 1..4),
    ) {
        let db = GraphDb::from_graphs(graphs);
        let catalog = midas_mining::EdgeCatalog::build(db_refs(&db).into_iter());
        let universe: BTreeSet<GraphId> = db.ids().collect();
        let kernel = MatchKernel::new(2);
        let serial = midas_catapult::score::set_quality(&patterns, &db, &catalog, &universe);
        let cached =
            midas_catapult::score::set_quality_with(&kernel, &patterns, &db, &catalog, &universe);
        prop_assert_eq!(serial, cached);
    }
}
