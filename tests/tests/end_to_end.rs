//! End-to-end integration tests: Algorithm 1 over generated datasets, the
//! paper's maintenance guarantees, and cross-structure consistency.

use midas_core::{Midas, ModificationKind};
use midas_datagen::updates::{deletion_percent, growth_percent, novel_family_batch};
use midas_datagen::{DatasetKind, DatasetSpec, MotifKind};
use midas_graph::{BatchUpdate, GraphId};
use midas_tests::test_config;
use std::collections::BTreeSet;

fn bootstrap(size: usize, seed: u64) -> Midas {
    let db = DatasetSpec::new(DatasetKind::PubchemLike, size, seed)
        .generate()
        .db;
    Midas::bootstrap(db, test_config(seed)).expect("non-empty db")
}

#[test]
fn bootstrap_produces_valid_pattern_set() {
    let midas = bootstrap(80, 1);
    let patterns = midas.patterns();
    assert!(!patterns.is_empty());
    let config = midas.config();
    for p in &patterns {
        assert!(p.is_connected(), "patterns are connected");
        assert!(p.edge_count() >= config.budget.eta_min);
        assert!(p.edge_count() <= config.budget.eta_max);
    }
    // Pairwise non-isomorphic.
    for i in 0..patterns.len() {
        for j in i + 1..patterns.len() {
            assert!(!midas_graph::canonical::are_isomorphic(
                &patterns[i],
                &patterns[j]
            ));
        }
    }
}

#[test]
fn same_distribution_growth_is_minor_and_patterns_stay() {
    let mut midas = bootstrap(80, 2);
    let before = midas.patterns();
    let update = growth_percent(&DatasetKind::PubchemLike.params(), midas.db(), 10.0, 22);
    let report = midas.apply_batch(update);
    assert_eq!(
        report.kind,
        ModificationKind::Minor,
        "drift {}",
        report.distance
    );
    assert_eq!(midas.patterns(), before, "minor modifications keep P");
    assert_eq!(report.swaps, 0);
}

#[test]
fn novel_family_is_major() {
    let mut midas = bootstrap(80, 3);
    let update = novel_family_batch(MotifKind::BoronicEster, 30, 33);
    let report = midas.apply_batch(update);
    assert_eq!(
        report.kind,
        ModificationKind::Major,
        "drift {}",
        report.distance
    );
}

#[test]
fn substrate_stays_consistent_across_batches() {
    let mut midas = bootstrap(60, 4);
    for round in 0..4u64 {
        let update = match round % 3 {
            0 => novel_family_batch(MotifKind::Phosphate, 15, 40 + round),
            1 => growth_percent(
                &DatasetKind::PubchemLike.params(),
                midas.db(),
                10.0,
                40 + round,
            ),
            _ => deletion_percent(midas.db(), 10.0, 40 + round),
        };
        midas.apply_batch(update);
        // Clusters partition the database exactly.
        assert_eq!(midas.clusters().total_members(), midas.db().len());
        for (id, _) in midas.db().iter() {
            let cid = midas.clusters().cluster_of(id).expect("graph clustered");
            assert!(midas
                .clusters()
                .get(cid)
                .expect("live")
                .members()
                .contains(&id));
        }
        // CSG members mirror cluster members.
        for (_, cluster) in midas.clusters().iter() {
            assert_eq!(cluster.csg().members().len(), cluster.len());
        }
        // FCT supports only reference live graphs.
        for (_, entry) in midas.fct_state().lattice.iter() {
            for id in &entry.support {
                assert!(midas.db().contains(*id), "stale support id {id}");
            }
        }
        // Index graph columns only reference live graphs.
        for (_, gid, _) in midas.fct_index().tg().iter() {
            assert!(midas.db().contains(gid));
        }
        // Pattern columns reference live patterns.
        let live: BTreeSet<_> = midas.pattern_store().iter().map(|(id, _)| id).collect();
        for (_, pid, _) in midas.fct_index().tp().iter() {
            assert!(live.contains(&pid), "stale pattern column {pid}");
        }
    }
}

#[test]
fn quality_guarantees_on_major_modification() {
    let mut midas = bootstrap(80, 5);
    let before = midas.quality();
    let report = midas.apply_batch(novel_family_batch(MotifKind::BoronicEster, 40, 55));
    assert_eq!(report.kind, ModificationKind::Major);
    let after = midas.quality();
    // sw3/sw4 guarantees translate into global diversity / cognitive-load
    // monotonicity regardless of the sample.
    assert!(
        after.div >= before.div - 1e-9,
        "sw3: {} -> {}",
        before.div,
        after.div
    );
    assert!(
        after.cog <= before.cog + 1e-9,
        "sw4: {} -> {}",
        before.cog,
        after.cog
    );
    // γ is preserved through swapping.
    assert_eq!(midas.patterns().len(), before_len_or(&midas));
}

fn before_len_or(midas: &Midas) -> usize {
    midas.pattern_store().len()
}

#[test]
fn empty_batch_is_harmless() {
    let mut midas = bootstrap(50, 6);
    let before = midas.patterns();
    let report = midas.apply_batch(BatchUpdate::default());
    assert_eq!(report.kind, ModificationKind::Minor);
    assert_eq!(midas.patterns(), before);
}

#[test]
fn deleting_most_of_the_database_survives() {
    let mut midas = bootstrap(50, 7);
    let victims: Vec<GraphId> = midas.db().ids().take(40).collect();
    let report = midas.apply_batch(BatchUpdate::delete_only(victims));
    assert_eq!(midas.db().len(), 10);
    assert_eq!(midas.clusters().total_members(), 10);
    let _ = report;
}

#[test]
fn maintenance_is_deterministic() {
    let run = || {
        let mut midas = bootstrap(60, 8);
        midas.apply_batch(novel_family_batch(MotifKind::BoronicEster, 25, 88));
        midas.patterns()
    };
    assert_eq!(run(), run());
}

#[test]
fn midas_maintenance_is_not_slower_than_rebuild() {
    // Strict speedup claims live in the release-mode benches (Fig 11/16);
    // under a debug build timing is noisy, so this only guards against a
    // regression where incremental maintenance becomes *dramatically*
    // slower than rebuilding from scratch.
    use midas_core::baselines::catapult_pp_from_scratch;
    let mut midas = bootstrap(120, 9);
    let update = novel_family_batch(MotifKind::BoronicEster, 30, 99);
    let report = midas.apply_batch(update);
    let scratch = catapult_pp_from_scratch(midas.db(), midas.config());
    assert!(
        report.pattern_maintenance_time < scratch.total_time * 3,
        "PMT {:?} must stay within 3x of the rebuild {:?}",
        report.pattern_maintenance_time,
        scratch.total_time
    );
}
