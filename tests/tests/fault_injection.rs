//! End-to-end fault-isolation test: an injected worker panic (the
//! `MIDAS_FAULT=task:N` injector, armed programmatically) must be
//! contained by the exec layer and surface as a [`KernelError`] on the
//! maintenance report — the process stays alive, the flight recorder
//! logs the event, and the framework keeps working afterwards.
//!
//! The injector is process-global, so this file holds a single test
//! function: everything that arms it runs sequentially in here, and no
//! other test in this process fans out through the kernel while armed.

use midas_graph::exec::{set_fault_for_tests, try_par_map};
use midas_graph::KernelError;
use midas_oracle::fault_containment_pass;

#[test]
fn injected_worker_panic_is_contained_end_to_end() {
    // Phase 1: the full framework pass — bootstrap, arm `task:3`, apply a
    // growth batch, and require a KernelError-carrying report plus the
    // flight-recorder trail instead of an abort.
    let line = fault_containment_pass(7, 3).expect("injected fault must be contained");
    assert!(
        line.contains("kernel_error=true"),
        "flight recorder must log the contained failure: {line}"
    );
    assert!(
        line.contains("task 3"),
        "the error must name the injected task: {line}"
    );

    // Phase 2: the exec primitive directly — the n-th task panics, the
    // others complete, and the first failure (in slot order) is reported.
    let quiet = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    set_fault_for_tests(Some(2));
    let items: Vec<u64> = (0..16).collect();
    let result = try_par_map(4, &items, |&x| x * 2);
    set_fault_for_tests(None);
    std::panic::set_hook(quiet);
    let err = result.expect_err("the armed ordinal must surface as an error");
    assert_eq!(err.task, 2);
    assert!(err.to_string().contains("injected fault"));
    assert_ne!(err.task, KernelError::PHASE);

    // Phase 3: disarmed, the same fan-out succeeds — the injector left no
    // poisoned global state behind.
    let clean = try_par_map(4, &items, |&x| x * 2).expect("disarmed run is clean");
    assert_eq!(clean, (0..16).map(|x| x * 2).collect::<Vec<u64>>());
}
