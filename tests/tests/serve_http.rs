//! Cross-crate integration tests for the `midas-serve` daemon: tenant
//! isolation under concurrent maintenance, and the HTTP load harness
//! driving a real daemon end to end.

use midas_load::{run_http, LoadConfig};
use midas_serve::client::ServeClient;
use midas_serve::{GenOp, GenSpec, ServeConfig, ServeDaemon};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

fn start() -> (ServeDaemon, ServeClient) {
    let daemon = ServeDaemon::start(ServeConfig::default()).expect("start daemon");
    let client = ServeClient::new(daemon.addr().to_string());
    (daemon, client)
}

/// One tenant's maintenance must not perturb another tenant's serving:
/// while a writer hammers tenant A with growth batches, every concurrent
/// read of tenant B must answer promptly, at B's unchanged epoch, with
/// B's unchanged pattern set — and every snapshot observed of *either*
/// tenant must be internally consistent (a published epoch, never a
/// half-applied state).
#[test]
fn tenant_maintenance_does_not_block_or_leak_into_other_tenants() {
    let (daemon, client) = start();
    assert_eq!(
        client
            .create_tenant("awrite", "pubchem_like", 36, 41, "small")
            .unwrap()
            .status,
        201
    );
    assert_eq!(
        client
            .create_tenant("bread", "emol_like", 24, 43, "small")
            .unwrap()
            .status,
        201
    );
    let b_before = client.patterns("bread").unwrap();
    assert_eq!(b_before.epoch, 0);

    let writer_done = AtomicBool::new(false);
    let mut a_final_epoch = 0;
    let mut b_reads = 0u64;
    std::thread::scope(|scope| {
        // Writer: four synchronous growth batches to A, back to back.
        // mode=sync means each response only returns after apply_batch
        // has finished — the writer holds A's maintenance busy the whole
        // time the readers below are running.
        let writer_client = client.clone();
        let writer_done = &writer_done;
        let writer = scope.spawn(move || {
            for i in 0..4u64 {
                let spec = GenSpec {
                    op: GenOp::Growth,
                    percent: 8.0,
                    count: 0,
                    motif: None,
                    seed: 100 + i,
                };
                let reply = writer_client.post_generate("awrite", &spec, true).unwrap();
                assert_eq!(reply.status, 200, "{}", reply.body);
            }
            writer_done.store(true, Ordering::Release);
        });

        // Readers: poll B (and A) for the writer's whole lifetime.
        let mut a_epochs_seen = Vec::new();
        while !writer_done.load(Ordering::Acquire) {
            let started = Instant::now();
            let b = client.patterns("bread").unwrap();
            assert!(
                started.elapsed() < Duration::from_secs(5),
                "a read of B stalled behind A's maintenance"
            );
            // Isolation: B is untouched, bit for bit.
            assert_eq!(b.epoch, 0, "B's epoch moved while only A was written");
            assert_eq!(b.patterns, b_before.patterns, "B's pattern set changed");
            assert_eq!(b.db_len, b_before.db_len);
            b_reads += 1;

            // Consistency of the busy tenant: whatever epoch we catch,
            // the payload must be a published state (db grows with the
            // epoch; pattern set non-empty).
            let a = client.patterns("awrite").unwrap();
            assert!(a.epoch <= 4);
            assert!(!a.patterns.is_empty(), "observed a half-published snapshot");
            assert!(a.db_len >= 36, "db_len regressed under growth-only batches");
            a_epochs_seen.push(a.epoch);
        }
        writer.join().expect("writer panicked");

        // Epochs observed while reading the busy tenant never go back.
        assert!(
            a_epochs_seen.windows(2).all(|w| w[0] <= w[1]),
            "A's observed epochs were not monotone: {a_epochs_seen:?}"
        );
        a_final_epoch = client.epoch("awrite").unwrap().epoch;
    });

    assert_eq!(a_final_epoch, 4, "all four sync batches applied");
    assert!(b_reads > 0, "readers never ran while the writer was busy");
    assert_eq!(client.epoch("bread").unwrap().epoch, 0);
    daemon.shutdown();
}

/// The HTTP load harness runs its closed loop against a daemon-hosted
/// tenant while a *second* tenant stays frozen — `run_http` and tenant
/// isolation composed.
#[test]
fn http_load_harness_drives_one_tenant_while_another_stays_frozen() {
    let (daemon, client) = start();
    assert_eq!(
        client
            .create_tenant("driven", "pubchem_like", 30, 7, "small")
            .unwrap()
            .status,
        201
    );
    assert_eq!(
        client
            .create_tenant("frozen", "emol_like", 20, 9, "small")
            .unwrap()
            .status,
        201
    );

    let cfg = LoadConfig {
        users: 2,
        ticks: 3,
        tick_ms: 10,
        pool: 8,
        ..LoadConfig::default()
    };
    let report = run_http(&daemon.addr().to_string(), "driven", &cfg).expect("http load run");
    assert_eq!(report.ticks, 3);
    assert_eq!(report.final_epoch, 3);
    assert!(report.queries > 0);
    assert!(report.reduction.is_finite());

    let frozen = client.epoch("frozen").unwrap();
    assert_eq!(frozen.epoch, 0, "load on one tenant leaked into another");
    daemon.shutdown();
}
