//! Integration test for the differential oracle harness: a full run on a
//! fixed seed must come back clean (every fast path agrees with its
//! serial reference twin) and the report must serialize as valid JSON.

use midas_oracle::{graph_json, minimize_pair, Oracle};

#[test]
fn full_oracle_run_is_clean_on_the_ci_seed() {
    let report = Oracle::new(7).run_all();
    assert!(
        report.is_clean(),
        "oracle divergences: {}",
        report.to_json()
    );
    // All seven checks ran and actually compared something.
    assert_eq!(report.checks.len(), 7);
    for check in &report.checks {
        assert!(check.cases > 0, "check {} ran zero cases", check.name);
    }
    let names: Vec<&str> = report.checks.iter().map(|c| c.name).collect();
    assert_eq!(
        names,
        [
            "kernel_vs_serial",
            "incremental_mining",
            "graphlet_monitor",
            "ged_bounds",
            "multi_scan_swap",
            "plan_vs_vf2",
            "serve_vs_library",
        ]
    );
}

#[test]
fn oracle_runs_are_deterministic_for_a_seed() {
    let a = Oracle::new(11).run_all();
    let b = Oracle::new(11).run_all();
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn report_and_witness_json_validate() {
    let report = Oracle::new(7).run_all();
    midas_obs::json::validate(&report.to_json()).expect("report is valid JSON");
    let g = midas_graph::GraphBuilder::new()
        .vertices(&[0, 1, 2])
        .path(&[0, 1, 2])
        .build();
    midas_obs::json::validate(&graph_json(&g)).expect("graph witness is valid JSON");
}

#[test]
fn minimizer_finds_small_witnesses_for_planted_violations() {
    // Plant a fake "violation": the pair disagrees whenever both graphs
    // still contain an edge. The minimal witness is a single edge each.
    let chain = |n: u32| {
        let labels: Vec<u32> = (0..n).collect();
        let vs: Vec<u32> = (0..n).collect();
        midas_graph::GraphBuilder::new()
            .vertices(&labels)
            .path(&vs)
            .build()
    };
    let (a, b) = minimize_pair(&chain(6), &chain(5), |x, y| {
        x.edge_count() >= 1 && y.edge_count() >= 1
    });
    assert_eq!(a.vertex_count(), 2);
    assert_eq!(b.vertex_count(), 2);
    assert_eq!(a.edge_count(), 1);
    assert_eq!(b.edge_count(), 1);
}
