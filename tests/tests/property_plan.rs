//! Property tests for the plan-compiled matcher: on random connected
//! (pattern, target) pairs the plan interpreter over CSR label slices
//! must agree exactly with the serial VF2 reference — counts at every
//! cap, coverage booleans, full embedding sets, and the kernel routed
//! through either matcher.

use midas_graph::isomorphism::{count_embeddings, find_embeddings, is_subgraph_of};
use midas_graph::plan::{count_embeddings_plan, find_embeddings_plan, is_subgraph_plan};
use midas_graph::{Csr, GraphId, LabeledGraph, MatchKernel, MatcherKind};
use midas_tests::connected_graph_strategy;
use proptest::prelude::*;
use std::collections::BTreeSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Capped counts agree at a spread of caps, including the degenerate
    /// cap 1 (containment) and an effectively unbounded cap.
    #[test]
    fn plan_counts_match_vf2(
        pattern in connected_graph_strategy(6, 3),
        target in connected_graph_strategy(9, 3),
    ) {
        for cap in [1, 2, 64, u64::MAX] {
            prop_assert_eq!(
                count_embeddings_plan(&pattern, &target, cap),
                count_embeddings(&pattern, &target, cap),
                "cap {}", cap
            );
        }
    }

    /// Coverage booleans agree, in both directions of the pair.
    #[test]
    fn plan_coverage_matches_vf2(
        a in connected_graph_strategy(6, 3),
        b in connected_graph_strategy(7, 3),
    ) {
        prop_assert_eq!(is_subgraph_plan(&a, &b), is_subgraph_of(&a, &b));
        prop_assert_eq!(is_subgraph_plan(&b, &a), is_subgraph_of(&b, &a));
    }

    /// Both matchers enumerate in the pattern's own vertex numbering, so
    /// the embedding *sets* (order-free) must be identical.
    #[test]
    fn plan_embedding_sets_match_vf2(
        pattern in connected_graph_strategy(5, 3),
        target in connected_graph_strategy(7, 3),
    ) {
        let reference: BTreeSet<Vec<u32>> =
            find_embeddings(&pattern, &target, 10_000).into_iter().collect();
        let plan: BTreeSet<Vec<u32>> =
            find_embeddings_plan(&pattern, &target, 10_000).into_iter().collect();
        prop_assert_eq!(plan, reference);
    }

    /// The CSR twin reproduces the adjacency structure it was built from:
    /// same labels, same degrees, `has_edge` agreeing with the edge list,
    /// and per-label neighbor slices partitioning the neighborhood.
    #[test]
    fn csr_round_trips_random_graphs(g in connected_graph_strategy(8, 4)) {
        let csr = Csr::from_graph(&g);
        prop_assert_eq!(csr.vertex_count(), g.vertex_count());
        prop_assert_eq!(csr.edge_count(), g.edge_count());
        for v in g.vertices() {
            prop_assert_eq!(csr.label(v), g.label(v));
            prop_assert_eq!(csr.degree(v), g.neighbors(v).len());
            let mut want: Vec<u32> = g.neighbors(v).to_vec();
            want.sort_unstable();
            let mut got: Vec<u32> = csr.neighbors(v).to_vec();
            got.sort_unstable();
            prop_assert_eq!(got, want);
            // Per-label slices are sorted and partition the neighborhood.
            let mut by_label: Vec<u32> = Vec::new();
            let mut labels: Vec<u32> = g.neighbors(v).iter().map(|&w| g.label(w)).collect();
            labels.sort_unstable();
            labels.dedup();
            for l in labels {
                let slice = csr.neighbors_with_label(v, l);
                prop_assert!(slice.windows(2).all(|w| w[0] < w[1]));
                by_label.extend_from_slice(slice);
            }
            by_label.sort_unstable();
            let mut want: Vec<u32> = g.neighbors(v).to_vec();
            want.sort_unstable();
            prop_assert_eq!(by_label, want);
        }
        for &(u, v) in g.edges() {
            prop_assert!(csr.has_edge(u, v));
            prop_assert!(csr.has_edge(v, u));
        }
    }

    /// A kernel routed through the plan matcher and one routed through
    /// VF2 produce identical bulk results on the same inputs.
    #[test]
    fn kernels_agree_across_matchers(
        graphs in proptest::collection::vec(connected_graph_strategy(6, 3), 2..6),
        patterns in proptest::collection::vec(connected_graph_strategy(4, 3), 1..4),
    ) {
        let plan = MatchKernel::with_matcher(1, MatcherKind::Plan);
        let vf2 = MatchKernel::with_matcher(1, MatcherKind::Vf2);
        let refs: Vec<(GraphId, &LabeledGraph)> = graphs
            .iter()
            .enumerate()
            .map(|(i, g)| (GraphId(i as u64), g))
            .collect();
        for p in &patterns {
            prop_assert_eq!(
                plan.count_in_graphs(p, &refs, 64),
                vf2.count_in_graphs(p, &refs, 64)
            );
            prop_assert_eq!(plan.covered_in(p, &refs), vf2.covered_in(p, &refs));
            let targets: Vec<&LabeledGraph> = graphs.iter().collect();
            prop_assert_eq!(
                plan.count_plain_many(p, &targets, u64::MAX),
                vf2.count_plain_many(p, &targets, u64::MAX)
            );
        }
        let prepared_plan: Vec<_> = patterns.iter().map(|p| plan.prepare(p)).collect();
        let prepared_vf2: Vec<_> = patterns.iter().map(|p| vf2.prepare(p)).collect();
        prop_assert_eq!(
            plan.count_grid(&prepared_plan, &refs, 64),
            vf2.count_grid(&prepared_vf2, &refs, 64)
        );
    }
}
