//! Property tests for FCT mining and its incremental maintenance — the
//! closure-property guarantees of §4.1–4.2.

use midas_graph::{BatchUpdate, GraphDb, GraphId, LabeledGraph};
use midas_mining::incremental::FctState;
use midas_mining::{mine_lattice, MiningConfig};
use midas_tests::connected_graph_strategy;
use proptest::prelude::*;

fn config() -> MiningConfig {
    MiningConfig {
        sup_min: 0.5,
        max_edges: 3,
    }
}

fn lattice_snapshot(state: &FctState) -> Vec<(midas_mining::TreeKey, Vec<GraphId>, bool)> {
    state
        .lattice
        .iter()
        .map(|(k, e)| (k.clone(), e.support.iter().copied().collect(), e.closed))
        .collect()
}

/// Snapshot restricted to the user threshold: frequent trees with exact
/// supports (closed flags compared separately — see the deletion test).
fn user_threshold_snapshot(
    state: &FctState,
    db_len: usize,
) -> Vec<(midas_mining::TreeKey, Vec<GraphId>)> {
    state
        .frequent_trees(db_len)
        .into_iter()
        .map(|(k, e)| (k.clone(), e.support.iter().copied().collect()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Incremental maintenance after insertions equals from-scratch mining
    /// (Corollary 4.3 realized).
    #[test]
    fn insertion_maintenance_equals_scratch(
        base in proptest::collection::vec(connected_graph_strategy(6, 3), 3..8),
        delta in proptest::collection::vec(connected_graph_strategy(6, 3), 1..5),
    ) {
        let mut db = GraphDb::from_graphs(base);
        let mut state = FctState::build(&db, config());
        let (inserted, _) = db.apply(BatchUpdate::insert_only(delta));
        state.apply_batch(&db, &inserted, &[]);
        let scratch = FctState::build(&db, config());
        prop_assert_eq!(lattice_snapshot(&state), lattice_snapshot(&scratch));
    }

    /// Incremental maintenance after deletions preserves the paper's
    /// guarantee (Lemma 4.5): at the **user** threshold, the frequent-tree
    /// sets (with exact supports) coincide, and every from-scratch FCT is
    /// also an incremental FCT. (Below the user threshold the tracked
    /// lattices may differ: deleting graphs can *raise* relative supports
    /// past the relaxed tracking bar, which neither the paper's
    /// CTMiningDelete nor our realization re-mines.)
    #[test]
    fn deletion_maintenance_preserves_user_threshold(
        base in proptest::collection::vec(connected_graph_strategy(6, 3), 4..9),
        victim_idx in proptest::num::usize::ANY,
    ) {
        let mut db = GraphDb::from_graphs(base);
        let mut state = FctState::build(&db, config());
        let ids: Vec<GraphId> = db.ids().collect();
        let victim = ids[victim_idx % ids.len()];
        let graph = db.get(victim).expect("live").clone();
        db.remove(victim);
        state.apply_batch(&db, &[], &[(victim, graph.as_ref())]);
        let scratch = FctState::build(&db, config());
        prop_assert_eq!(user_threshold_snapshot(&state, db.len()),
                        user_threshold_snapshot(&scratch, db.len()));
        // Scratch tracks a superset of trees, hence has at least as many
        // closedness witnesses: scratch-FCT ⊆ incremental-FCT.
        let inc_fct: Vec<_> = state.fct(db.len()).into_iter().map(|(k, _)| k.clone()).collect();
        for (key, _) in scratch.fct(db.len()) {
            prop_assert!(inc_fct.contains(key), "scratch FCT missing incrementally: {:?}", key);
        }
    }

    /// Lemma 3.4: a tree closed in D or in ΔD is closed in D ⊕ ΔD (with
    /// support above the tracking threshold).
    #[test]
    fn lemma_3_4_closure_union(
        base in proptest::collection::vec(connected_graph_strategy(6, 2), 3..7),
        delta in proptest::collection::vec(connected_graph_strategy(6, 2), 2..5),
    ) {
        let refs_base: Vec<(GraphId, &LabeledGraph)> = base
            .iter()
            .enumerate()
            .map(|(i, g)| (GraphId(i as u64), g))
            .collect();
        let refs_delta: Vec<(GraphId, &LabeledGraph)> = delta
            .iter()
            .enumerate()
            .map(|(i, g)| (GraphId(1_000 + i as u64), g))
            .collect();
        let mut refs_union = refs_base.clone();
        refs_union.extend(refs_delta.iter().copied());
        // Mine everything at a permissive threshold so no tree is dropped
        // for frequency reasons — Lemma 3.4 is about closedness alone.
        let cfg = MiningConfig { sup_min: 1e-9, max_edges: 3 };
        let lat_base = mine_lattice(&refs_base, &cfg);
        let lat_delta = mine_lattice(&refs_delta, &cfg);
        let lat_union = mine_lattice(&refs_union, &cfg);
        for (key, entry) in lat_base.iter().chain(lat_delta.iter()) {
            if entry.closed {
                let in_union = lat_union.get(key).expect("union tracks all trees");
                prop_assert!(
                    in_union.closed,
                    "closed tree became non-closed in the union: {:?}", key
                );
            }
        }
    }

    /// Supports are anti-monotone: a subtree's support contains its
    /// supertree's support.
    #[test]
    fn support_anti_monotonicity(
        graphs in proptest::collection::vec(connected_graph_strategy(6, 2), 3..7),
    ) {
        let refs: Vec<(GraphId, &LabeledGraph)> = graphs
            .iter()
            .enumerate()
            .map(|(i, g)| (GraphId(i as u64), g))
            .collect();
        let cfg = MiningConfig { sup_min: 0.2, max_edges: 3 };
        let lattice = mine_lattice(&refs, &cfg);
        let entries: Vec<_> = lattice.iter().collect();
        for (_, small) in &entries {
            for (_, large) in &entries {
                if large.tree.edge_count() > small.tree.edge_count()
                    && midas_graph::isomorphism::is_subgraph_of(&small.tree, &large.tree)
                {
                    prop_assert!(
                        large.support.is_subset(&small.support),
                        "anti-monotonicity violated"
                    );
                }
            }
        }
    }
}

/// Mixed batches across several rounds stay equal to scratch (regression
/// harness for the incremental path; deterministic, not proptest, so the
/// sequence is long).
#[test]
fn long_mixed_sequence_stays_exact() {
    let seed_graphs: Vec<LabeledGraph> = (0..6)
        .map(|i| midas_tests::path(&[i % 3, (i + 1) % 3, (i + 2) % 3]))
        .collect();
    let mut db = GraphDb::from_graphs(seed_graphs);
    let mut state = FctState::build(&db, config());
    for round in 0..6u32 {
        let newcomers: Vec<LabeledGraph> = (0..2)
            .map(|j| midas_tests::path(&[(round + j) % 4, (round + j + 1) % 4]))
            .collect();
        let victim = db.ids().nth((round as usize) % db.len());
        let mut update = BatchUpdate::insert_only(newcomers);
        let mut deleted_pairs = Vec::new();
        if let Some(v) = victim {
            update.delete.push(v);
            deleted_pairs.push((v, db.get(v).expect("live").clone()));
        }
        let (inserted, _) = db.apply(update);
        let deleted_refs: Vec<(GraphId, &LabeledGraph)> = deleted_pairs
            .iter()
            .map(|(id, g)| (*id, g.as_ref()))
            .collect();
        state.apply_batch(&db, &inserted, &deleted_refs);
        let scratch = FctState::build(&db, config());
        // Deletions are involved, so compare at the user threshold (the
        // paper's guarantee — see the deletion property test above).
        assert_eq!(
            user_threshold_snapshot(&state, db.len()),
            user_threshold_snapshot(&scratch, db.len()),
            "divergence at round {round}"
        );
    }
}
