//! Property tests for the GED lower-bound chain: for every pair of small
//! labeled graphs, `ged_label_lower_bound ≤ ged_tight_lower_bound ≤
//! ged_exact` must hold — the bounds are only usable for pruning while
//! they stay admissible (never exceed the true edit distance).
//!
//! Graphs here are deliberately *not* restricted to connected ones:
//! isolated vertices are exactly the shape that made the paper-literal
//! strengthened bound (`GED'_l + n`) inadmissible, so the generator must
//! reach them.

use midas_graph::ged::{ged_exact, ged_label_lower_bound, ged_tight_lower_bound};
use midas_graph::{GraphBuilder, LabeledGraph};
use proptest::prelude::*;

/// A small labeled graph that may be disconnected and may contain
/// isolated vertices: up to `max_vertices` vertices (labels in
/// `0..max_label`) and a sparse random edge set.
fn sparse_graph_strategy(
    max_vertices: usize,
    max_label: u32,
) -> impl Strategy<Value = LabeledGraph> {
    (1..=max_vertices)
        .prop_flat_map(move |n| {
            let labels = proptest::collection::vec(0..max_label, n);
            let edges = proptest::collection::vec((0..n, 0..n), 0..=n * 2);
            (labels, edges)
        })
        .prop_map(|(labels, edges)| {
            let mut g = LabeledGraph::new();
            for &l in &labels {
                g.add_vertex(l);
            }
            for (a, b) in edges {
                let (a, b) = (a as u32, b as u32);
                if a != b && !g.has_edge(a, b) {
                    g.add_edge(a, b);
                }
            }
            g
        })
}

fn path(labels: &[u32]) -> LabeledGraph {
    let vs: Vec<u32> = (0..labels.len() as u32).collect();
    GraphBuilder::new().vertices(labels).path(&vs).build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The full admissibility chain on arbitrary small pairs.
    #[test]
    fn lower_bound_chain_is_admissible(
        a in sparse_graph_strategy(5, 4),
        b in sparse_graph_strategy(5, 4),
    ) {
        let label = ged_label_lower_bound(&a, &b);
        let tight = ged_tight_lower_bound(&a, &b);
        let exact = ged_exact(&a, &b);
        prop_assert!(
            label <= tight,
            "tight bound must dominate the label bound: label = {label}, tight = {tight}"
        );
        prop_assert!(
            tight <= exact,
            "tight bound must stay admissible: tight = {tight}, exact = {exact}"
        );
    }

    /// Both bounds are symmetric, like the distance they bound.
    #[test]
    fn lower_bounds_are_symmetric(
        a in sparse_graph_strategy(5, 4),
        b in sparse_graph_strategy(5, 4),
    ) {
        prop_assert_eq!(ged_label_lower_bound(&a, &b), ged_label_lower_bound(&b, &a));
        prop_assert_eq!(ged_tight_lower_bound(&a, &b), ged_tight_lower_bound(&b, &a));
    }

    /// Identical graphs have distance zero, and every bound agrees.
    #[test]
    fn identical_graphs_bound_to_zero(g in sparse_graph_strategy(5, 4)) {
        prop_assert_eq!(ged_label_lower_bound(&g, &g), 0);
        prop_assert_eq!(ged_tight_lower_bound(&g, &g), 0);
        prop_assert_eq!(ged_exact(&g, &g), 0);
    }
}

/// The pair that broke the paper-literal strengthened bound: relabeling
/// one interior vertex of a 3-path is a single edit, but `GED'_l + n`
/// claimed 3. The repaired bound must sit at or below the exact value.
#[test]
fn interior_relabel_regression_stays_admissible() {
    let a = path(&[0, 0, 0]);
    let b = path(&[0, 1, 0]);
    let exact = ged_exact(&a, &b);
    assert_eq!(exact, 1);
    assert!(ged_tight_lower_bound(&a, &b) <= exact);
}

/// Disjoint label alphabets: every vertex must be relabeled, and the
/// bounds must see all of it without overshooting.
#[test]
fn disjoint_label_alphabets() {
    let a = path(&[0, 1]);
    let b = path(&[2, 3]);
    let exact = ged_exact(&a, &b);
    assert_eq!(ged_label_lower_bound(&a, &b), 2);
    assert!(ged_tight_lower_bound(&a, &b) <= exact);
    assert!(exact >= 2);
}

/// Isolated vertices vs a triangle on the same labels: the edit distance
/// is pure edge insertion; the edge-aware tight bound must capture it
/// while staying admissible.
#[test]
fn isolated_vertices_vs_triangle() {
    let isolated = GraphBuilder::new().vertices(&[0, 0, 0]).build();
    let triangle = GraphBuilder::new()
        .vertices(&[0, 0, 0])
        .edge(0, 1)
        .edge(1, 2)
        .edge(0, 2)
        .build();
    let exact = ged_exact(&isolated, &triangle);
    assert_eq!(exact, 3);
    let tight = ged_tight_lower_bound(&isolated, &triangle);
    assert!(tight <= exact);
    assert!(tight >= ged_label_lower_bound(&isolated, &triangle));
}
