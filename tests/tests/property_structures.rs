//! Property tests for the bookkeeping structures: closure graphs (CSG
//! maintenance §4.4), the index matrices (§5.1), and the swap guarantees
//! (§6.2).

use midas_core::metrics::ScovContext;
use midas_core::patterns::PatternStore;
use midas_core::swap::{multi_scan_swap, SwapParams};
use midas_graph::{ClosureGraph, GraphDb, GraphId, LabeledGraph};
use midas_index::{FctIndex, IfeIndex, PatternId};
use midas_mining::EdgeCatalog;
use midas_tests::connected_graph_strategy;
use proptest::prelude::*;
use std::collections::BTreeSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// CSG insert/remove round-trips: removing everything that was added
    /// after a base set restores the base edge structure (§4.4's edge
    /// support discipline).
    #[test]
    fn closure_graph_roundtrip(
        base in proptest::collection::vec(connected_graph_strategy(5, 3), 1..4),
        extra in proptest::collection::vec(connected_graph_strategy(5, 3), 1..4),
    ) {
        let mut csg = ClosureGraph::new();
        for (i, g) in base.iter().enumerate() {
            csg.insert_graph(GraphId(i as u64), g);
        }
        let snapshot: Vec<(u32, u32, Vec<GraphId>)> = csg
            .edges()
            .map(|(u, v, s)| (u, v, s.iter().copied().collect()))
            .collect();
        let member_snapshot = csg.members().clone();
        for (i, g) in extra.iter().enumerate() {
            csg.insert_graph(GraphId(100 + i as u64), g);
        }
        for (i, g) in extra.iter().enumerate() {
            csg.remove_graph(GraphId(100 + i as u64), g);
        }
        let back: Vec<(u32, u32, Vec<GraphId>)> = csg
            .edges()
            .map(|(u, v, s)| (u, v, s.iter().copied().collect()))
            .collect();
        prop_assert_eq!(snapshot, back);
        prop_assert_eq!(member_snapshot, csg.members().clone());
    }

    /// Every member graph's edges appear in its CSG with that member in
    /// the support set (§4.4 step 1 invariant).
    #[test]
    fn closure_graph_supports_cover_members(
        graphs in proptest::collection::vec(connected_graph_strategy(5, 3), 1..5),
    ) {
        let refs: Vec<(GraphId, &LabeledGraph)> = graphs
            .iter()
            .enumerate()
            .map(|(i, g)| (GraphId(i as u64), g))
            .collect();
        let csg = ClosureGraph::from_graphs(refs.iter().copied());
        for &(id, g) in &refs {
            let supported_edges = csg
                .edges()
                .filter(|(_, _, s)| s.contains(&id))
                .count();
            prop_assert_eq!(
                supported_edges,
                g.edge_count(),
                "member {} must support exactly its own edge count", id
            );
        }
    }

    /// Index graph columns: adding then removing a graph leaves the
    /// matrices untouched (§5.1 rules 3–4).
    #[test]
    fn index_graph_column_roundtrip(
        feature in connected_graph_strategy(3, 2),
        graphs in proptest::collection::vec(connected_graph_strategy(5, 2), 1..4),
        newcomer in connected_graph_strategy(5, 2),
    ) {
        // Only tree-shaped features are meaningful; skip others.
        prop_assume!(midas_mining::canonical::is_tree(&feature));
        let refs: Vec<(GraphId, &LabeledGraph)> = graphs
            .iter()
            .enumerate()
            .map(|(i, g)| (GraphId(i as u64), g))
            .collect();
        let mut index = FctIndex::build(
            [(midas_mining::tree_key(&feature), &feature)],
            refs.iter().copied(),
            std::iter::empty::<(PatternId, &LabeledGraph)>(),
        );
        let before: Vec<_> = index.tg().iter().collect::<Vec<_>>();
        index.add_graph(GraphId(999), &newcomer);
        index.remove_graph(GraphId(999));
        let after: Vec<_> = index.tg().iter().collect::<Vec<_>>();
        prop_assert_eq!(before, after);
    }

    /// The swap never decreases sample-level coverage, diversity or label
    /// coverage, and never increases cognitive load (sw1–sw5 as a
    /// property).
    #[test]
    fn swap_quality_monotonicity(
        db_graphs in proptest::collection::vec(connected_graph_strategy(6, 3), 4..10),
        initial in proptest::collection::vec(connected_graph_strategy(5, 3), 1..4),
        candidates in proptest::collection::vec(connected_graph_strategy(5, 3), 1..4),
    ) {
        let db = GraphDb::from_graphs(db_graphs);
        let refs: Vec<(GraphId, &LabeledGraph)> =
            db.iter().map(|(id, g)| (id, g.as_ref())).collect();
        let catalog = EdgeCatalog::build(refs.iter().copied());
        let sample: BTreeSet<GraphId> = db.ids().collect();
        let mut fct = FctIndex::build(
            std::iter::empty::<(midas_mining::TreeKey, &LabeledGraph)>(),
            refs.iter().copied(),
            std::iter::empty::<(PatternId, &LabeledGraph)>(),
        );
        let mut ife = IfeIndex::build(
            BTreeSet::new(),
            refs.iter().copied(),
            std::iter::empty::<(PatternId, &LabeledGraph)>(),
        );
        let mut store = PatternStore::new();
        for p in initial {
            store.insert(p);
        }
        prop_assume!(!store.is_empty());
        let fct_snapshot = fct.clone();
        let ife_snapshot = ife.clone();
        let ctx = ScovContext {
            fct: &fct_snapshot,
            ife: &ife_snapshot,
            db: &db,
            sample: &sample,
            catalog: &catalog,
            kernel: None,
        };
        let before = midas_core::quality_of(&store.graphs(), &db, &catalog, &sample);
        multi_scan_swap(
            &mut store,
            candidates,
            &ctx,
            &SwapParams::default(),
            &mut fct,
            &mut ife,
        );
        let after = midas_core::quality_of(&store.graphs(), &db, &catalog, &sample);
        prop_assert!(after.scov >= before.scov - 1e-9, "sw1: {} -> {}", before.scov, after.scov);
        prop_assert!(after.div >= before.div - 1e-9, "sw3: {} -> {}", before.div, after.div);
        prop_assert!(after.cog <= before.cog + 1e-9, "sw4: {} -> {}", before.cog, after.cog);
        prop_assert!(after.lcov >= before.lcov - 1e-9, "sw5: {} -> {}", before.lcov, after.lcov);
    }

    /// Pattern-store size is invariant under swapping (γ preservation).
    #[test]
    fn swap_preserves_gamma(
        db_graphs in proptest::collection::vec(connected_graph_strategy(5, 2), 3..7),
        candidates in proptest::collection::vec(connected_graph_strategy(4, 2), 1..4),
    ) {
        let db = GraphDb::from_graphs(db_graphs);
        let refs: Vec<(GraphId, &LabeledGraph)> =
            db.iter().map(|(id, g)| (id, g.as_ref())).collect();
        let catalog = EdgeCatalog::build(refs.iter().copied());
        let sample: BTreeSet<GraphId> = db.ids().collect();
        let mut fct = FctIndex::build(
            std::iter::empty::<(midas_mining::TreeKey, &LabeledGraph)>(),
            refs.iter().copied(),
            std::iter::empty::<(PatternId, &LabeledGraph)>(),
        );
        let mut ife = IfeIndex::build(
            BTreeSet::new(),
            refs.iter().copied(),
            std::iter::empty::<(PatternId, &LabeledGraph)>(),
        );
        let mut store = PatternStore::new();
        store.insert(midas_tests::path(&[0, 1, 0]));
        store.insert(midas_tests::path(&[1, 0, 1]));
        let gamma = store.len();
        let fct_snapshot = fct.clone();
        let ife_snapshot = ife.clone();
        let ctx = ScovContext {
            fct: &fct_snapshot,
            ife: &ife_snapshot,
            db: &db,
            sample: &sample,
            catalog: &catalog,
            kernel: None,
        };
        multi_scan_swap(
            &mut store,
            candidates,
            &ctx,
            &SwapParams::default(),
            &mut fct,
            &mut ife,
        );
        prop_assert_eq!(store.len(), gamma);
    }
}
