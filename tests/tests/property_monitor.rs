//! Property tests for the graphlet monitor (§3.4): incremental add/remove
//! bookkeeping must stay equal to a from-scratch rebuild.

use midas_core::monitor::GraphletMonitor;
use midas_graph::{GraphDb, GraphId, LabeledGraph};
use midas_tests::connected_graph_strategy;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After adding a first wave, removing a random subset of it, and
    /// adding a second wave, the monitor's totals equal those of a monitor
    /// built from scratch on the surviving graphs.
    #[test]
    fn incremental_totals_match_rebuild(
        first in proptest::collection::vec(connected_graph_strategy(6, 3), 1..6),
        removed_mask in 0..64u32,
        second in proptest::collection::vec(connected_graph_strategy(6, 3), 0..4),
    ) {
        let mut monitor = GraphletMonitor::default();
        for (i, g) in first.iter().enumerate() {
            monitor.add_graph(GraphId(i as u64), g);
        }
        let mut survivors: Vec<&LabeledGraph> = Vec::new();
        for (i, g) in first.iter().enumerate() {
            if removed_mask & (1 << i) != 0 {
                monitor.remove_graph(GraphId(i as u64));
            } else {
                survivors.push(g);
            }
        }
        for (i, g) in second.iter().enumerate() {
            monitor.add_graph(GraphId(100 + i as u64), g);
            survivors.push(g);
        }
        let rebuilt = GraphletMonitor::build(&GraphDb::from_graphs(survivors.iter().map(|g| (*g).clone())));
        prop_assert_eq!(monitor.totals(), rebuilt.totals());
        prop_assert_eq!(monitor.len(), rebuilt.len());
        // And the distributions they feed into classification agree too.
        let d = monitor.distribution().euclidean_distance(&rebuilt.distribution());
        prop_assert!(d < 1e-12, "distribution drift {d}");
    }

    /// Removing every graph returns the monitor to its pristine state, no
    /// matter the insertion order.
    #[test]
    fn full_removal_is_identity(
        graphs in proptest::collection::vec(connected_graph_strategy(6, 3), 1..6),
    ) {
        let mut monitor = GraphletMonitor::default();
        for (i, g) in graphs.iter().enumerate() {
            monitor.add_graph(GraphId(i as u64), g);
        }
        for i in 0..graphs.len() {
            monitor.remove_graph(GraphId(i as u64));
        }
        prop_assert!(monitor.is_empty());
        let pristine = GraphletMonitor::default();
        prop_assert_eq!(monitor.totals(), pristine.totals());
    }
}
