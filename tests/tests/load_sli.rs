//! Reader consistency and non-blocking reads for the published pattern
//! snapshot, plus the closed-loop load harness end to end.
//!
//! The acceptance property of the snapshot layer: a pattern-set read
//! *completes* while an `apply_batch` is in flight (readers never wait for
//! maintenance), and no read ever observes a partially-updated set — every
//! observed `Arc` is pointer-identical to some *published* end-of-batch
//! snapshot, because snapshots are immutable once published.

use midas_core::{Midas, PatternSnapshot};
use midas_datagen::{DatasetKind, DatasetSpec, MotifKind};
use midas_load::LoadConfig;
use midas_tests::test_config;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// The telemetry switch is process-global; the one test that flips it
/// holds this lock (future telemetry tests in this binary must too).
static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

fn bootstrap(db_size: usize) -> Midas {
    let dataset = DatasetSpec::new(DatasetKind::PubchemLike, db_size, 11).generate();
    Midas::bootstrap(dataset.db, test_config(11)).expect("bootstrap")
}

/// Two snapshots are "the same publication" iff they are the same Arc.
fn is_published(observed: &Arc<PatternSnapshot>, published: &[Arc<PatternSnapshot>]) -> bool {
    published.iter().any(|p| Arc::ptr_eq(p, observed))
}

#[test]
fn reads_complete_while_apply_batch_is_in_flight() {
    let mut midas = bootstrap(60);
    let handle = midas.snapshot_handle();
    // Every publication the batches will produce, collected as they
    // happen; observed snapshots must each be one of these.
    let mut published: Vec<Arc<PatternSnapshot>> = vec![midas.pattern_snapshot()];

    let in_flight = AtomicBool::new(false);
    let stop = AtomicBool::new(false);
    let mut reads_during_flight = 0u64;

    std::thread::scope(|scope| {
        let reader = scope.spawn(|| {
            let mut during = 0u64;
            let mut observed: Vec<Arc<PatternSnapshot>> = Vec::new();
            while !stop.load(Ordering::Acquire) {
                let flight = in_flight.load(Ordering::Acquire);
                let snap = handle.read();
                // The read returned at all while a batch was mid-flight:
                // that is the non-blocking property (an RwLock held across
                // maintenance would park us here until the batch ended).
                if flight {
                    during += 1;
                }
                if !observed.iter().any(|o| Arc::ptr_eq(o, &snap)) {
                    observed.push(snap);
                }
            }
            (during, observed)
        });

        // Sizable novel-family batches so each apply_batch has real work
        // in flight; a handful of batches gives the reader plenty of
        // overlap without any fault-injection env coupling.
        for i in 0..5u64 {
            let wave = midas_datagen::novel_family_batch(
                if i % 2 == 0 {
                    MotifKind::BoronicEster
                } else {
                    MotifKind::Phosphate
                },
                24,
                900 + i,
            );
            in_flight.store(true, Ordering::Release);
            midas.apply_batch(wave);
            in_flight.store(false, Ordering::Release);
            published.push(midas.pattern_snapshot());
        }
        stop.store(true, Ordering::Release);

        let (during, observed) = reader.join().expect("reader panicked");
        reads_during_flight = during;
        // Consistency: every snapshot the reader ever saw is one of the
        // published end-of-batch states — never an intermediate.
        for snap in &observed {
            assert!(
                is_published(snap, &published),
                "reader observed a snapshot that was never published \
                 (epoch {})",
                snap.epoch
            );
        }
        assert!(
            observed.len() >= 2,
            "reader saw {} distinct snapshots; expected the batches to \
             publish visibly",
            observed.len()
        );
    });

    assert!(
        reads_during_flight > 0,
        "no read completed while a batch was in flight — reads are \
         blocking on maintenance"
    );
    assert_eq!(midas.pattern_snapshot().epoch, 5);
}

#[test]
fn patterns_accessor_routes_through_the_snapshot() {
    let mut midas = bootstrap(40);
    assert_eq!(midas.patterns(), midas.pattern_snapshot().patterns);
    let wave = midas_datagen::novel_family_batch(MotifKind::BoronicEster, 16, 3);
    midas.apply_batch(wave);
    let snap = midas.pattern_snapshot();
    assert_eq!(snap.epoch, 1);
    assert_eq!(
        midas.patterns(),
        snap.patterns,
        "patterns() must serve the published snapshot, not internal state"
    );
    assert_eq!(snap.db_len, midas.db().len());
}

#[test]
fn held_snapshots_age_but_never_mutate() {
    let mut midas = bootstrap(40);
    let held = midas.pattern_snapshot();
    let held_patterns = held.patterns.clone();
    for i in 0..3u64 {
        let wave = midas_datagen::novel_family_batch(MotifKind::Phosphate, 12, 70 + i);
        midas.apply_batch(wave);
    }
    let latest = midas.pattern_snapshot();
    assert_eq!(held.patterns, held_patterns, "held snapshot is immutable");
    assert_eq!(held.batches_behind(&latest), 3);
    assert!(held.drift_to(&latest).is_finite());
}

#[test]
fn load_harness_streams_slis_while_batches_run() {
    // End to end through the public API: the closed loop produces queries,
    // the sli registry metrics advance, and /sli renders them.
    let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Enable *after* bootstrap: Midas::bootstrap activates its own
    // TelemetryConfig (disabled in test_config) over the global switch.
    let mut midas = bootstrap(50);
    midas_obs::set_enabled(true);
    let before = midas_obs::registry::registry().counter("sli.queries").get();
    let cfg = LoadConfig {
        users: 2,
        ticks: 2,
        tick_ms: 10,
        pool: 8,
        ..LoadConfig::default()
    };
    let report = midas_load::run(&mut midas, DatasetKind::PubchemLike, &cfg);
    midas_obs::set_enabled(false);
    assert!(report.queries > 0);
    assert_eq!(report.final_epoch, 2);
    let after = midas_obs::registry::registry().counter("sli.queries").get();
    assert_eq!(
        after - before,
        report.queries,
        "every report sample also landed in the sli registry"
    );
    let doc = midas_obs::sli::render_json();
    midas_obs::json::validate(&doc).expect("sli JSON validates");
    assert!(doc.contains("\"recent_ticks\""), "{doc}");
}
