//! The regression-sentry layer, end to end: the cooperative profiler must
//! attribute samples to live span stacks, tail-latency exemplars must stay
//! deterministic and carry (pattern, graph) attribution out of the VF2
//! kernel, the burn-rate alert windows must rotate exactly at the slot
//! boundary, and an injected `MIDAS_FAULT=slow:US` must flip `/alerts`
//! and `/healthz` to firing within two batches.
//!
//! Telemetry, the SLO config, the profiler and the exemplar reservoirs
//! are all process-global, so every test here holds a shared lock and
//! restores the defaults before releasing it.

use midas_core::framework::Midas;
use midas_graph::{BatchUpdate, GraphDb, LabeledGraph};
use midas_obs::alerts::{self, AlertState, SloConfig, FAST_SLOTS};
use midas_obs::registry::registry;
use midas_obs::{exemplar, json, profile, TelemetryConfig};
use midas_tests::{path, test_config};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn seed_db() -> GraphDb {
    GraphDb::from_graphs((0..24).map(|i| path(&[0, 1, 2, 0, (i % 3) as u32])))
}

fn wave(seed: u32) -> Vec<LabeledGraph> {
    (0..4)
        .map(|i| path(&[seed % 5, (i + seed) % 5, 2]))
        .collect()
}

/// Minimal HTTP/1.1 GET over a std TcpStream: returns (status, body).
fn http_get(addr: SocketAddr, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to obs server");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(stream, "GET {target} HTTP/1.1\r\nHost: midas\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn profiler_attributes_samples_to_nested_span_stacks() {
    let _g = exclusive();
    midas_obs::set_enabled(true);
    profile::reset();

    // A worker parked inside a nested span pair: the sampler must see the
    // full stack from another thread, folded outer-first.
    let (ready_tx, ready_rx) = std::sync::mpsc::channel();
    let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
    let worker = std::thread::spawn(move || {
        let _outer = midas_obs::span!("sentry.outer");
        let _inner = midas_obs::span!("sentry.inner");
        ready_tx.send(()).unwrap();
        let _ = done_rx.recv();
    });
    ready_rx.recv().unwrap();
    let mut observed = 0;
    for _ in 0..3 {
        observed += profile::sample_once();
    }
    done_tx.send(()).unwrap();
    worker.join().unwrap();
    midas_obs::set_enabled(false);

    assert!(observed >= 3, "worker stack sampled each pass: {observed}");
    let text = profile::folded();
    let line = text
        .lines()
        .find(|l| l.starts_with("sentry.outer;sentry.inner "))
        .unwrap_or_else(|| panic!("nested stack missing from folded output: {text:?}"));
    let count: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(count >= 3, "three passes aggregate into one line: {line}");
    profile::reset();
}

#[test]
fn exemplar_reservoir_is_deterministic_under_interleaving() {
    let _g = exclusive();
    midas_obs::set_enabled(true);
    let series = exemplar::series("sentry.ex_ns", "ns");
    series.reset();

    // Offer 40 distinct values in a scrambled order; the reservoir must
    // converge to the same top-K regardless of arrival order.
    let mut values: Vec<u64> = (1..=40).map(|i| i * 1_000).collect();
    let mid = values.len() / 2;
    values.rotate_left(7);
    values.swap(0, mid);
    for &v in &values {
        series.offer(v);
    }
    midas_obs::set_enabled(false);

    assert_eq!(series.offered(), 40);
    let top = series.top();
    assert_eq!(top.len(), exemplar::RESERVOIR_K);
    let got: Vec<u64> = top.iter().map(|e| e.value).collect();
    let want: Vec<u64> = (0..exemplar::RESERVOIR_K as u64)
        .map(|i| (40 - i) * 1_000)
        .collect();
    assert_eq!(got, want, "top-K is the K largest, sorted descending");
    series.reset();
}

#[test]
fn alert_windows_rotate_exactly_at_the_fast_boundary() {
    let _g = exclusive();
    alerts::configure(SloConfig {
        phase_budget_us: 100,
        ..SloConfig::default()
    });
    let h = registry().span("batch.cluster").durations();
    h.reset();
    // A burst of violations filling ticks 0..=3.
    for tick in 0..=3u64 {
        for _ in 0..5 {
            h.record_windowed_at(100_000, tick);
        }
    }
    let eval_at = |now: u64| {
        alerts::evaluate_at(now)
            .into_iter()
            .find(|a| a.name == "batch.cluster")
            .expect("monitored phase")
    };

    // While the burst is inside the fast window, both windows burn.
    let eval = eval_at(3);
    assert_eq!(eval.fast, (20, 20));
    assert_eq!(eval.state, AlertState::Firing, "{eval:?}");

    // The last burst tick (3) stays in the fast window up to and
    // including now = 3 + FAST_SLOTS - 1...
    let eval = eval_at(3 + FAST_SLOTS - 1);
    assert!(eval.fast.0 > 0, "tick 3 still inside the fast window");
    assert_eq!(eval.state, AlertState::Firing, "{eval:?}");

    // ...and ages out exactly one tick later: the fast window is now
    // empty, and an empty fast window never fires, even though the slow
    // window still holds all 20 violations.
    let eval = eval_at(3 + FAST_SLOTS);
    assert_eq!(eval.fast, (0, 0), "fast window drained at the boundary");
    assert_eq!(eval.slow, (20, 20), "slow window still burning");
    assert_eq!(eval.state, AlertState::Ok, "no false fire on empty fast");

    h.reset();
    alerts::configure(SloConfig::default());
}

#[test]
fn injected_slowdown_flips_alerts_and_healthz_to_firing() {
    let _g = exclusive();
    // The documented fault-injection path: every env knob flows through
    // TelemetryConfig::from_env inside Midas::bootstrap.
    std::env::set_var("MIDAS_SERVE", "127.0.0.1:0");
    std::env::set_var("MIDAS_FAULT", "slow:200000"); // +200 ms in batch.index
    std::env::set_var("MIDAS_SLO_PHASE_US", "1000"); // 1 ms budget
    std::env::set_var("MIDAS_PROFILE_HZ", "200");
    registry().span("batch.index").durations().reset();
    profile::reset();

    let mut cfg = test_config(7);
    cfg.telemetry.enabled = true;
    let mut midas = Midas::bootstrap(seed_db(), cfg).unwrap();
    let addr = midas.obs_addr().expect("server bound via MIDAS_SERVE");

    // Two batches, each sleeping 200 ms inside the batch.index span: both
    // land in the current fast window, so the alert must fire well within
    // the two-fast-window acceptance bound.
    for i in 0..2u32 {
        midas.apply_batch(BatchUpdate::insert_only(wave(i)));
    }
    std::env::remove_var("MIDAS_FAULT");

    let firing = alerts::firing();
    assert!(
        firing.contains(&"batch.index"),
        "batch.index alert fires after the injected slowdown: {firing:?}"
    );

    // /alerts reports the firing state with the configured budget.
    let (status, body) = http_get(addr, "/alerts");
    assert_eq!(status, 200);
    json::validate(&body).expect("alerts JSON validates");
    assert!(body.contains("\"phase_budget_us\": 1000"), "{body}");
    assert!(
        body.contains("\"name\": \"batch.index\", \"state\": \"firing\""),
        "alerts endpoint shows batch.index firing:\n{body}"
    );

    // /healthz degrades to "alerting" and names the culprit.
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    json::validate(&body).expect("healthz is valid JSON");
    assert!(body.contains("\"status\": \"alerting\""), "{body}");
    assert!(body.contains("\"batch.index\""), "{body}");

    // /slow attributes the slowest searches to concrete ids. The kernel
    // defaults to the plan-compiled matcher, so attribution lands on its
    // series.
    let (status, body) = http_get(addr, "/slow");
    assert_eq!(status, 200);
    json::validate(&body).expect("slow JSON validates");
    assert!(body.contains("\"plan.search_ns\""), "{body}");
    let attributed = exemplar::series("plan.search_ns", "ns")
        .top()
        .iter()
        .any(|e| e.pattern().is_some() && e.graph().is_some());
    assert!(attributed, "at least one exemplar carries (pattern, graph)");

    // /profile caught the batch loop in the act: 200 ms asleep inside
    // batch.index at 200 Hz leaves dozens of samples on that frame.
    let (status, body) = http_get(addr, "/profile");
    assert_eq!(status, 200);
    assert!(
        body.lines().any(|l| l.starts_with("batch.index")),
        "sampler attributes time to batch.index:\n{body}"
    );

    std::env::remove_var("MIDAS_SERVE");
    std::env::remove_var("MIDAS_SLO_PHASE_US");
    std::env::remove_var("MIDAS_PROFILE_HZ");
    registry().span("batch.index").durations().reset();
    profile::reset();
    TelemetryConfig::default().activate();
}
