//! Property tests for the graph substrate: canonical codes, VF2, GED
//! bounds, graphlets, MCCS, and tree canonical strings.

use midas_graph::canonical::{are_isomorphic, canonical_code};
use midas_graph::ged::{ged_exact, ged_label_lower_bound, ged_tight_lower_bound};
use midas_graph::graphlets::{count_graphlets, count_graphlets_brute_force};
use midas_graph::isomorphism::{count_embeddings, count_embeddings_brute_force, is_subgraph_of};
use midas_graph::mccs::{mccs_edges, mccs_similarity};
use midas_tests::{connected_graph_strategy, permutation_strategy, permute, tree_strategy};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Canonical codes are invariant under vertex permutation.
    #[test]
    fn canonical_code_permutation_invariant(
        g in connected_graph_strategy(7, 3),
        seed in proptest::num::u64::ANY,
    ) {
        let n = g.vertex_count();
        let perm = {
            // Deterministic permutation from the seed.
            let mut p: Vec<usize> = (0..n).collect();
            let mut state = seed;
            for i in (1..n).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let j = (state >> 33) as usize % (i + 1);
                p.swap(i, j);
            }
            p
        };
        let h = permute(&g, &perm);
        prop_assert_eq!(canonical_code(&g), canonical_code(&h));
        prop_assert!(are_isomorphic(&g, &h));
    }

    /// VF2 embedding counts agree with brute force on small graphs.
    #[test]
    fn vf2_matches_brute_force(
        pattern in connected_graph_strategy(4, 2),
        target in connected_graph_strategy(6, 2),
    ) {
        prop_assert_eq!(
            count_embeddings(&pattern, &target, u64::MAX),
            count_embeddings_brute_force(&pattern, &target)
        );
    }

    /// A connected subgraph always embeds in its source.
    #[test]
    fn subgraph_embeds_in_source(g in connected_graph_strategy(7, 3)) {
        // Remove one leaf-ish vertex to get a subgraph candidate.
        if g.vertex_count() > 2 {
            let keep: Vec<u32> = (0..g.vertex_count() as u32 - 1).collect();
            let sub = g.induced_subgraph(&keep);
            if sub.is_connected() {
                prop_assert!(is_subgraph_of(&sub, &g));
            }
        }
    }

    /// GED lower bounds never exceed the exact distance, and the tight
    /// bound dominates the base bound.
    #[test]
    fn ged_bound_sandwich(
        a in connected_graph_strategy(5, 3),
        b in connected_graph_strategy(5, 3),
    ) {
        let exact = ged_exact(&a, &b);
        prop_assert!(ged_label_lower_bound(&a, &b) <= exact);
        prop_assert!(ged_tight_lower_bound(&a, &b) >= ged_label_lower_bound(&a, &b));
    }

    /// Exact GED is a metric on these samples: identity and symmetry.
    #[test]
    fn ged_identity_and_symmetry(
        a in connected_graph_strategy(5, 3),
        b in connected_graph_strategy(5, 3),
    ) {
        prop_assert_eq!(ged_exact(&a, &a), 0);
        prop_assert_eq!(ged_exact(&a, &b), ged_exact(&b, &a));
    }

    /// ESU graphlet counting agrees with subset enumeration.
    #[test]
    fn graphlets_match_brute_force(g in connected_graph_strategy(8, 2)) {
        prop_assert_eq!(count_graphlets(&g), count_graphlets_brute_force(&g));
    }

    /// Graphlet distributions of isomorphic graphs coincide.
    #[test]
    fn graphlets_are_invariants(
        g in connected_graph_strategy(7, 3),
        seed in proptest::num::u64::ANY,
    ) {
        let n = g.vertex_count();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut state = seed;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let h = permute(&g, &perm);
        prop_assert_eq!(count_graphlets(&g), count_graphlets(&h));
    }

    /// MCCS: similarity to self is 1; symmetric; bounded by 1.
    #[test]
    fn mccs_properties(
        a in connected_graph_strategy(5, 2),
        b in connected_graph_strategy(5, 2),
    ) {
        let sim_self = mccs_similarity(&a, &a, 50_000);
        prop_assert!((sim_self - 1.0).abs() < 1e-9);
        let ab = mccs_edges(&a, &b, 50_000);
        let ba = mccs_edges(&b, &a, 50_000);
        if ab.exact && ba.exact {
            prop_assert_eq!(ab.edges, ba.edges);
        }
        prop_assert!(mccs_similarity(&a, &b, 50_000) <= 1.0 + 1e-9);
    }

    /// Tree canonical strings are permutation-invariant and decodable to
    /// the right vertex count.
    #[test]
    fn tree_keys_are_canonical(
        t in tree_strategy(8, 3),
        seed in proptest::num::u64::ANY,
    ) {
        let n = t.vertex_count();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut state = seed;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let h = permute(&t, &perm);
        let ka = midas_mining::tree_key(&t);
        let kb = midas_mining::tree_key(&h);
        prop_assert_eq!(&ka, &kb);
        prop_assert_eq!(ka.vertex_count(), n);
    }

    /// Distinct canonical codes imply tree keys differ too (consistency of
    /// the two canonical forms on trees).
    #[test]
    fn tree_key_consistent_with_graph_canonical(
        a in tree_strategy(7, 3),
        b in tree_strategy(7, 3),
    ) {
        let same_graph = are_isomorphic(&a, &b);
        let same_tree = midas_mining::tree_key(&a) == midas_mining::tree_key(&b);
        prop_assert_eq!(same_graph, same_tree);
    }
}

/// A permutation strategy is exercised directly here so the helper is
/// covered (and stays deterministic under shrinking).
#[test]
fn permutation_strategy_smoke() {
    use proptest::strategy::{Strategy, ValueTree};
    use proptest::test_runner::TestRunner;
    let mut runner = TestRunner::deterministic();
    let tree = permutation_strategy(5).new_tree(&mut runner).unwrap();
    let mut perm = tree.current();
    perm.sort_unstable();
    assert_eq!(perm, vec![0, 1, 2, 3, 4]);
}
