//! Integration of the formulation simulator with real maintenance output:
//! MP, μ and the study pipeline over generated workloads.

use midas_core::Midas;
use midas_datagen::updates::novel_family_batch;
use midas_datagen::{DatasetKind, DatasetSpec, MotifKind};
use midas_graph::GraphId;
use midas_queryform::{formulate, missed_percentage, reduction_ratio, StudyConfig, UserStudy};
use midas_tests::test_config;
use std::collections::BTreeSet;

#[test]
fn maintained_patterns_never_increase_steps_on_delta_queries() {
    let db = DatasetSpec::new(DatasetKind::PubchemLike, 100, 11)
        .generate()
        .db;
    let mut midas = Midas::bootstrap(db, test_config(11)).expect("non-empty");
    let stale = midas.patterns();
    let before: BTreeSet<GraphId> = midas.db().ids().collect();
    midas.apply_batch(novel_family_batch(MotifKind::BoronicEster, 40, 111));
    let inserted: Vec<GraphId> = midas.db().ids().filter(|id| !before.contains(id)).collect();
    let queries = midas_datagen::balanced_query_set(midas.db(), &inserted, 30, (4, 10), 112);

    let mu = reduction_ratio(&queries, &stale, &midas.patterns());
    // μ ≥ 0: the maintained set is at least as good on balanced queries.
    // (Strict improvement depends on seeds; non-regression must hold.)
    assert!(mu >= -1e-9, "maintained patterns regressed: mu = {mu}");

    let mp_fresh = missed_percentage(&queries, &midas.patterns());
    let mp_stale = missed_percentage(&queries, &stale);
    assert!(mp_fresh <= mp_stale + 1e-9, "{mp_fresh} vs {mp_stale}");
}

#[test]
fn formulation_steps_bounded_by_edge_mode() {
    let db = DatasetSpec::new(DatasetKind::AidsLike, 60, 12)
        .generate()
        .db;
    let midas = Midas::bootstrap(db, test_config(12)).expect("non-empty");
    let queries = midas_datagen::query_set(midas.db(), 25, (3, 12), 121);
    for q in &queries {
        let r = formulate(q, &midas.patterns());
        assert!(r.steps <= r.edge_steps);
        assert_eq!(r.edge_steps, q.vertex_count() + q.edge_count());
        assert!(r.covered_edges <= q.edge_count());
        assert!(r.covered_vertices <= q.vertex_count());
    }
}

#[test]
fn study_pipeline_end_to_end() {
    let db = DatasetSpec::new(DatasetKind::EmolLike, 60, 13)
        .generate()
        .db;
    let mut midas = Midas::bootstrap(db, test_config(13)).expect("non-empty");
    midas.apply_batch(novel_family_batch(MotifKind::Thiol, 20, 131));
    let queries = midas_datagen::query_set(midas.db(), 15, (4, 10), 132);
    let study = UserStudy::new(StudyConfig {
        users: 5,
        ..StudyConfig::default()
    });
    let with_patterns = study.run(&queries, &midas.patterns());
    let without = study.run(&queries, &[]);
    assert!(with_patterns.steps <= without.steps);
    assert!(with_patterns.qft_secs <= without.qft_secs);
    assert_eq!(without.vmt_secs, 0.0, "no panel, no browsing time");
    assert!(with_patterns.missed_pct <= 100.0);
}

#[test]
fn mp_is_monotone_in_pattern_set() {
    // Adding patterns can only reduce the missed percentage.
    let db = DatasetSpec::new(DatasetKind::PubchemLike, 50, 14)
        .generate()
        .db;
    let midas = Midas::bootstrap(db, test_config(14)).expect("non-empty");
    let patterns = midas.patterns();
    let queries = midas_datagen::query_set(midas.db(), 20, (3, 8), 141);
    let mut previous = 100.0f64;
    for take in 0..=patterns.len() {
        let subset = &patterns[..take];
        let mp = missed_percentage(&queries, subset);
        assert!(mp <= previous + 1e-9, "MP rose when adding a pattern");
        previous = mp;
    }
}
