//! Shared helpers for the cross-crate integration and property tests.

use midas_catapult::PatternBudget;
use midas_core::MidasConfig;
use midas_graph::{GraphBuilder, LabeledGraph};
use proptest::prelude::*;

/// A small MIDAS configuration for integration tests.
pub fn test_config(seed: u64) -> MidasConfig {
    MidasConfig {
        budget: PatternBudget {
            eta_min: 3,
            eta_max: 5,
            gamma: 6,
        },
        sup_min: 0.4,
        max_tree_edges: 3,
        coarse_clusters: 3,
        max_cluster_size: 50,
        sample_size: 60,
        walks: 40,
        walk_length: 12,
        seeds_per_size: 2,
        epsilon: 0.01,
        seed,
        ..MidasConfig::default()
    }
}

/// Builds a labeled path graph.
pub fn path(labels: &[u32]) -> LabeledGraph {
    let vs: Vec<u32> = (0..labels.len() as u32).collect();
    GraphBuilder::new().vertices(labels).path(&vs).build()
}

/// Proptest strategy: a small connected labeled graph with up to
/// `max_vertices` vertices and `max_label` distinct labels.
///
/// Construction: a random labeled spanning path (guaranteeing
/// connectivity) plus a random subset of extra edges.
pub fn connected_graph_strategy(
    max_vertices: usize,
    max_label: u32,
) -> impl Strategy<Value = LabeledGraph> {
    (2..=max_vertices)
        .prop_flat_map(move |n| {
            let labels = proptest::collection::vec(0..max_label, n);
            let extra_edges = proptest::collection::vec((0..n, 0..n), 0..=n);
            (labels, extra_edges)
        })
        .prop_map(|(labels, extra)| {
            let n = labels.len();
            let mut g = LabeledGraph::new();
            for &l in &labels {
                g.add_vertex(l);
            }
            for i in 1..n as u32 {
                g.add_edge(i - 1, i);
            }
            for (a, b) in extra {
                let (a, b) = (a as u32, b as u32);
                if a != b && !g.has_edge(a, b) {
                    g.add_edge(a, b);
                }
            }
            g
        })
}

/// Proptest strategy: a small labeled *tree*.
pub fn tree_strategy(max_vertices: usize, max_label: u32) -> impl Strategy<Value = LabeledGraph> {
    (1..=max_vertices)
        .prop_flat_map(move |n| {
            let labels = proptest::collection::vec(0..max_label, n);
            // parent[i] ∈ [0, i) attaches vertex i to an earlier vertex.
            let parents = proptest::collection::vec(proptest::num::usize::ANY, n.saturating_sub(1));
            (labels, parents)
        })
        .prop_map(|(labels, parents)| {
            let mut g = LabeledGraph::new();
            for &l in &labels {
                g.add_vertex(l);
            }
            for (i, &p) in parents.iter().enumerate() {
                let child = (i + 1) as u32;
                let parent = (p % (i + 1)) as u32;
                g.add_edge(parent, child);
            }
            g
        })
}

/// Applies a random vertex permutation, returning an isomorphic copy.
pub fn permute(g: &LabeledGraph, perm: &[usize]) -> LabeledGraph {
    let n = g.vertex_count();
    assert_eq!(perm.len(), n);
    // perm[i] = new index of old vertex i.
    let labels: Vec<u32> = {
        let mut out = vec![0; n];
        for v in 0..n {
            out[perm[v]] = g.label(v as u32);
        }
        out
    };
    let mut h = LabeledGraph::new();
    for &l in &labels {
        h.add_vertex(l);
    }
    for &(u, v) in g.edges() {
        h.add_edge(perm[u as usize] as u32, perm[v as usize] as u32);
    }
    h
}

/// Proptest strategy for a permutation of `0..n`.
pub fn permutation_strategy(n: usize) -> impl Strategy<Value = Vec<usize>> {
    Just((0..n).collect::<Vec<usize>>()).prop_shuffle()
}
